//! HTTP/1.1 framing for the event-driven front-end: an **incremental**
//! request parser over in-memory byte buffers (the event loop reads
//! whatever the socket has and asks "is a full request here yet?"),
//! plus response rendering — fixed `Content-Length` bodies and
//! `Transfer-Encoding: chunked` streams — for persistent (keep-alive)
//! connections.
//!
//! Nothing here touches a socket: the parser consumes `&[u8]` and
//! reports how many bytes it used, the renderers return `Vec<u8>`. That
//! keeps the module trivially testable and lets the event loop own all
//! I/O (and its readiness bookkeeping) in one place.

use explainti_api::{ApiError, ErrorCode};

/// Upper bound on a request body; larger payloads get 413.
pub const MAX_BODY_BYTES: usize = 4 * 1024 * 1024;
/// Upper bound on the request line + header section.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Upper bound on the number of header lines.
const MAX_HEADERS: usize = 100;

/// A parsed inbound request.
#[derive(Debug)]
pub struct Request {
    /// HTTP method, uppercased as received (`GET`, `POST`, …).
    pub method: String,
    /// Request path with any query string removed, e.g. `/v1/interpret`.
    pub path: String,
    /// Raw query string after `?` (empty when absent), undecoded.
    pub query: String,
    /// Raw body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the connection may carry another request after this one
    /// (HTTP/1.1 default unless `Connection: close`; HTTP/1.0 only with
    /// `Connection: keep-alive`).
    pub keep_alive: bool,
    /// Whether the response may use chunked transfer-encoding
    /// (HTTP/1.1 only — 1.0 clients get a buffered body instead).
    pub http11: bool,
    /// Nanoseconds from the request's first byte arriving to the parse
    /// completing — the wide-event `parse` stage, stamped by the event
    /// loop (0 until it does).
    pub parse_ns: u64,
}

/// Outcome of a parse attempt over a connection's read buffer.
#[derive(Debug)]
pub enum Parse {
    /// A complete request; `consumed` bytes of the buffer were used.
    Complete {
        /// The parsed request.
        request: Request,
        /// How many buffer bytes the request occupied.
        consumed: usize,
    },
    /// Not enough bytes yet — read more and try again.
    Partial,
    /// The bytes cannot become a valid request; answer the error and
    /// close (resynchronising a corrupt HTTP stream is not worth it).
    Invalid(ApiError),
}

/// Finds the end of the header section: the index just past the blank
/// line. Accepts `\r\n\r\n` and bare `\n\n`.
fn head_end(buf: &[u8]) -> Option<usize> {
    let mut prev_nl = None;
    for (i, &b) in buf.iter().enumerate() {
        if b != b'\n' {
            continue;
        }
        if let Some(p) = prev_nl {
            // Two newlines separated only by an optional '\r'.
            let between = &buf[p + 1..i];
            if between.is_empty() || between == b"\r" {
                return Some(i + 1);
            }
        }
        prev_nl = Some(i);
    }
    None
}

/// Attempts to parse one request from the front of `buf`.
pub fn parse_request(buf: &[u8]) -> Parse {
    let Some(head_len) = head_end(buf) else {
        if buf.len() > MAX_HEAD_BYTES {
            return Parse::Invalid(ApiError::new(
                ErrorCode::PayloadTooLarge,
                format!("request head exceeds {MAX_HEAD_BYTES} bytes"),
            ));
        }
        return Parse::Partial;
    };
    if head_len > MAX_HEAD_BYTES {
        return Parse::Invalid(ApiError::new(
            ErrorCode::PayloadTooLarge,
            format!("request head exceeds {MAX_HEAD_BYTES} bytes"),
        ));
    }
    let head = match std::str::from_utf8(&buf[..head_len]) {
        Ok(h) => h,
        Err(_) => return Parse::Invalid(ApiError::bad_request("header is not valid UTF-8")),
    };
    let mut lines = head.split('\n').map(|l| l.strip_suffix('\r').unwrap_or(l));
    let request_line = lines.next().unwrap_or_default();
    let mut parts = request_line.split_whitespace();
    let method = match parts.next() {
        Some(m) if !m.is_empty() => m.to_ascii_uppercase(),
        _ => return Parse::Invalid(ApiError::bad_request("empty request line")),
    };
    let target = match parts.next() {
        Some(t) => t.to_string(),
        None => return Parse::Invalid(ApiError::bad_request("request line has no path")),
    };
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p.to_string(), q.to_string()),
        None => (target, String::new()),
    };
    let http11 = match parts.next() {
        Some("HTTP/1.1") => true,
        Some("HTTP/1.0") => false,
        _ => return Parse::Invalid(ApiError::bad_request("expected an HTTP/1.x request")),
    };

    let mut content_length: Option<usize> = None;
    // HTTP/1.1 defaults to keep-alive; 1.0 to close.
    let mut keep_alive = http11;
    let mut n_headers = 0usize;
    for line in lines {
        if line.is_empty() {
            continue;
        }
        n_headers += 1;
        if n_headers > MAX_HEADERS {
            return Parse::Invalid(ApiError::bad_request("too many headers"));
        }
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let name = name.trim();
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            // RFC 9112 §6.1: repeated Content-Length headers (even with
            // identical values) are rejected outright — disagreeing
            // with a fronting proxy over body framing on a keep-alive
            // connection is how request smuggling starts.
            if content_length.is_some() {
                return Parse::Invalid(ApiError::bad_request("duplicate Content-Length header"));
            }
            let parsed: usize = match value.parse() {
                Ok(n) => n,
                Err(_) => return Parse::Invalid(ApiError::bad_request("invalid Content-Length")),
            };
            if parsed > MAX_BODY_BYTES {
                return Parse::Invalid(ApiError::new(
                    ErrorCode::PayloadTooLarge,
                    format!("body exceeds {MAX_BODY_BYTES} bytes"),
                ));
            }
            content_length = Some(parsed);
        } else if name.eq_ignore_ascii_case("connection") {
            // Token list; "close" wins over "keep-alive" if both appear.
            let mut saw_close = false;
            let mut saw_keep = false;
            for tok in value.split(',') {
                let tok = tok.trim();
                if tok.eq_ignore_ascii_case("close") {
                    saw_close = true;
                } else if tok.eq_ignore_ascii_case("keep-alive") {
                    saw_keep = true;
                }
            }
            keep_alive = if saw_close { false } else { saw_keep || http11 };
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            // Inbound chunked bodies are not supported (the API takes
            // small JSON documents); refuse loudly instead of
            // mis-framing the stream.
            return Parse::Invalid(ApiError::bad_request(
                "chunked request bodies are not supported; send Content-Length",
            ));
        }
    }

    let total = head_len + content_length.unwrap_or(0);
    if buf.len() < total {
        return Parse::Partial;
    }
    let body = buf[head_len..total].to_vec();
    Parse::Complete {
        request: Request { method, path, query, body, keep_alive, http11, parse_ns: 0 },
        consumed: total,
    }
}

// ---- Response rendering ----------------------------------------------

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        409 => "Conflict",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

/// Optional response headers beyond the framing essentials.
#[derive(Debug, Default, Clone)]
pub struct Extras<'a> {
    /// `X-Trace-Id` value, when the request has a trace.
    pub trace_id: Option<&'a str>,
    /// `Retry-After` seconds (429/503 hints).
    pub retry_after_s: Option<u64>,
    /// `Allow` header value for 405 responses, e.g. `"GET"`.
    pub allow: Option<&'a str>,
    /// `X-Model-Generation` — the model generation that served the request.
    pub generation: Option<u64>,
    /// `Deprecation: true` — set on responses from deprecated route aliases.
    pub deprecated: bool,
}

fn head_common(status: u16, content_type: &str, extras: &Extras<'_>, keep_alive: bool) -> String {
    let mut head =
        format!("HTTP/1.1 {} {}\r\nContent-Type: {}\r\n", status, reason(status), content_type);
    if let Some(id) = extras.trace_id {
        head.push_str("X-Trace-Id: ");
        head.push_str(id);
        head.push_str("\r\n");
    }
    if let Some(s) = extras.retry_after_s {
        head.push_str(&format!("Retry-After: {s}\r\n"));
    }
    if let Some(allow) = extras.allow {
        head.push_str("Allow: ");
        head.push_str(allow);
        head.push_str("\r\n");
    }
    if let Some(generation) = extras.generation {
        head.push_str(&format!("X-Model-Generation: {generation}\r\n"));
    }
    if extras.deprecated {
        head.push_str("Deprecation: true\r\n");
    }
    head.push_str(if keep_alive { "Connection: keep-alive\r\n" } else { "Connection: close\r\n" });
    head
}

/// Renders a complete response with a fixed `Content-Length` body.
pub fn render_full(
    status: u16,
    content_type: &str,
    body: &str,
    extras: &Extras<'_>,
    keep_alive: bool,
) -> Vec<u8> {
    let mut head = head_common(status, content_type, extras, keep_alive);
    head.push_str(&format!("Content-Length: {}\r\n\r\n", body.len()));
    let mut out = head.into_bytes();
    out.extend_from_slice(body.as_bytes());
    out
}

/// Renders the head of a chunked streaming response; the body follows
/// as [`render_chunk`] frames terminated by [`LAST_CHUNK`].
pub fn render_chunked_head(
    status: u16,
    content_type: &str,
    extras: &Extras<'_>,
    keep_alive: bool,
) -> Vec<u8> {
    let mut head = head_common(status, content_type, extras, keep_alive);
    head.push_str("Transfer-Encoding: chunked\r\n\r\n");
    head.into_bytes()
}

/// Frames one chunk of a chunked response (empty payloads are skipped —
/// an empty chunk would terminate the stream early).
pub fn render_chunk(payload: &[u8]) -> Vec<u8> {
    if payload.is_empty() {
        return Vec::new();
    }
    let mut out = format!("{:x}\r\n", payload.len()).into_bytes();
    out.extend_from_slice(payload);
    out.extend_from_slice(b"\r\n");
    out
}

/// The terminating frame of a chunked response.
pub const LAST_CHUNK: &[u8] = b"0\r\n\r\n";

/// The [`ApiError`] body with a `trace_id` key spliced in.
///
/// The wire schema is frozen (EA005), so the id rides in the serialised
/// JSON at the HTTP layer — round-tripped through `Value` so the body
/// stays byte-compatible with the bare `ApiError` shape plus one key —
/// rather than as a new DTO field.
pub fn error_body(err: &ApiError, trace_id: &str) -> String {
    let plain = serde_json::to_string(err).unwrap_or_else(|_| "{}".to_string());
    match serde_json::from_str::<serde_json::Value>(&plain) {
        Ok(serde_json::Value::Object(mut map)) => {
            map.insert("trace_id".to_string(), serde_json::Value::String(trace_id.to_string()));
            serde_json::to_string(&serde_json::Value::Object(map)).unwrap_or(plain)
        }
        _ => plain,
    }
}

/// Renders a typed error response: status from the code, `trace_id`
/// spliced into the body, `retry_after_s` mirrored as `Retry-After`.
pub fn render_error(
    err: &ApiError,
    trace_id: &str,
    keep_alive: bool,
    allow: Option<&str>,
) -> Vec<u8> {
    let body = error_body(err, trace_id);
    let extras = Extras {
        trace_id: Some(trace_id),
        retry_after_s: err.retry_after_s,
        allow,
        ..Default::default()
    };
    render_full(err.status(), "application/json", &body, &extras, keep_alive)
}

#[cfg(test)]
#[allow(clippy::unwrap_used, clippy::expect_used)] // tests may panic freely
mod tests {
    use super::*;

    fn complete(buf: &[u8]) -> (Request, usize) {
        match parse_request(buf) {
            Parse::Complete { request, consumed } => (request, consumed),
            other => panic!("expected Complete, got {other:?}"),
        }
    }

    #[test]
    fn parses_request_with_body_and_reports_consumed() {
        let raw =
            b"POST /v1/interpret?x=1 HTTP/1.1\r\nHost: t\r\nContent-Length: 4\r\n\r\nbodyNEXT";
        let (req, consumed) = complete(raw);
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/interpret");
        assert_eq!(req.query, "x=1");
        assert_eq!(req.body, b"body");
        assert!(req.keep_alive && req.http11);
        // The next pipelined request's bytes are not consumed.
        assert_eq!(consumed, raw.len() - 4);
    }

    #[test]
    fn partial_until_body_arrives() {
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\n12345";
        assert!(matches!(parse_request(raw), Parse::Partial));
        assert!(matches!(parse_request(b"GET / HT"), Parse::Partial));
    }

    #[test]
    fn connection_close_and_http10_disable_keep_alive() {
        let (req, _) = complete(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n");
        assert!(!req.keep_alive);
        let (req, _) = complete(b"GET / HTTP/1.0\r\n\r\n");
        assert!(!req.keep_alive && !req.http11);
        let (req, _) = complete(b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n");
        assert!(req.keep_alive && !req.http11);
    }

    #[test]
    fn bare_lf_line_endings_are_tolerated() {
        let (req, consumed) = complete(b"GET /v1/healthz HTTP/1.1\nHost: t\n\n");
        assert_eq!(req.path, "/v1/healthz");
        assert_eq!(consumed, 34);
    }

    #[test]
    fn invalid_requests_are_typed_errors() {
        assert!(matches!(parse_request(b"\r\n\r\n"), Parse::Invalid(_)));
        assert!(matches!(parse_request(b"GET\r\n\r\n"), Parse::Invalid(_)));
        assert!(matches!(parse_request(b"GET / SPDY/3\r\n\r\n"), Parse::Invalid(_)));
        let huge = format!("POST / HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        match parse_request(huge.as_bytes()) {
            Parse::Invalid(e) => assert_eq!(e.status(), 413),
            other => panic!("expected 413, got {other:?}"),
        }
        match parse_request(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n") {
            Parse::Invalid(e) => assert_eq!(e.status(), 400),
            other => panic!("expected 400, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_content_length_is_rejected() {
        // Differing values: classic smuggling vector.
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 2\r\n\r\nbody";
        match parse_request(raw) {
            Parse::Invalid(e) => assert_eq!(e.status(), 400),
            other => panic!("expected 400, got {other:?}"),
        }
        // Identical repeats are rejected too (RFC 9112 §6.1).
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\nbody";
        assert!(matches!(parse_request(raw), Parse::Invalid(_)));
        // Comma-folded values never parse as a single integer.
        let raw = b"POST / HTTP/1.1\r\nContent-Length: 4, 4\r\n\r\nbody";
        assert!(matches!(parse_request(raw), Parse::Invalid(_)));
    }

    #[test]
    fn oversized_head_is_rejected_even_without_terminator() {
        let raw = vec![b'A'; MAX_HEAD_BYTES + 2];
        match parse_request(&raw) {
            Parse::Invalid(e) => assert_eq!(e.status(), 413),
            other => panic!("expected 413, got {other:?}"),
        }
    }

    #[test]
    fn render_full_and_chunked_frame_correctly() {
        let extras = Extras { trace_id: Some("deadbeef"), ..Default::default() };
        let full = render_full(200, "application/json", "{}", &extras, true);
        let text = String::from_utf8(full).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"), "{text}");
        assert!(text.contains("X-Trace-Id: deadbeef\r\n"), "{text}");
        assert!(text.contains("Connection: keep-alive\r\n"), "{text}");
        assert!(text.ends_with("Content-Length: 2\r\n\r\n{}"), "{text}");

        let head = render_chunked_head(200, "application/json", &extras, false);
        let text = String::from_utf8(head).unwrap();
        assert!(text.contains("Transfer-Encoding: chunked\r\n"), "{text}");
        assert!(text.contains("Connection: close\r\n"), "{text}");
        assert_eq!(render_chunk(b"abc"), b"3\r\nabc\r\n");
        assert!(render_chunk(b"").is_empty());
        assert_eq!(LAST_CHUNK, b"0\r\n\r\n");
    }

    #[test]
    fn render_error_carries_retry_after_and_allow() {
        let err = ApiError::too_many_connections("full", 1);
        let text = String::from_utf8(render_error(&err, "beef", false, None)).unwrap();
        assert!(text.starts_with("HTTP/1.1 429 Too Many Requests\r\n"), "{text}");
        assert!(text.contains("Retry-After: 1\r\n"), "{text}");
        assert!(text.contains("\"retry_after_s\":1"), "{text}");
        assert!(text.contains("\"trace_id\":\"beef\""), "{text}");

        let err = ApiError::new(explainti_api::ErrorCode::MethodNotAllowed, "wrong method");
        let text = String::from_utf8(render_error(&err, "beef", true, Some("GET"))).unwrap();
        assert!(text.contains("Allow: GET\r\n"), "{text}");
        assert!(!text.contains("Retry-After"), "{text}");
    }

    #[test]
    fn error_body_splices_trace_id_and_keeps_shape() {
        let err = ApiError::bad_request("nope");
        let body = error_body(&err, "00000000deadbeef");
        let v: serde_json::Value = serde_json::from_str(&body).unwrap();
        assert_eq!(v["trace_id"].as_str().unwrap(), "00000000deadbeef");
        assert_eq!(v["message"].as_str().unwrap(), "nope");
        // The original error keys survive the splice byte-for-byte.
        let plain = serde_json::to_string(&err).unwrap();
        let plain_v: serde_json::Value = serde_json::from_str(&plain).unwrap();
        assert_eq!(v["code"], plain_v["code"]);
    }
}
