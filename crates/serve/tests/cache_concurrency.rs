//! Property tests for `serve::cache::LruCache` under concurrent access.
//!
//! The serving layer shares one `Mutex<LruCache>` between every
//! connection handler and worker thread; these tests drive that exact
//! arrangement from N shared-pool threads and check the invariants the
//! server depends on:
//!
//! * **capacity**: `len() <= capacity()` at every observation point;
//! * **no lost updates**: a key that was inserted and never evicted is
//!   retrievable, and a hit always returns a value some thread actually
//!   inserted for that key;
//! * **counter consistency**: hits + misses == lookups performed, and
//!   inserts == evictions + live entries for disjoint key sets.

// Integration tests may panic freely; the crate's unwrap/expect
// lints target the request path (EA006), not test assertions.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use explainti_serve::cache::LruCache;
use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A deterministic per-thread xorshift64* stream (no external rand).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }
}

const THREADS: usize = 8;
const OPS_PER_THREAD: usize = 4_000;
const CAPACITY: usize = 32;
const KEY_SPACE: u64 = 96; // 3x capacity → constant eviction pressure

#[test]
fn concurrent_mixed_workload_upholds_invariants() {
    explainti_pool::configure(THREADS);
    let cache: Mutex<LruCache<u64, u64>> = Mutex::new(LruCache::new(CAPACITY));
    let hits = AtomicU64::new(0);
    let misses = AtomicU64::new(0);
    let inserts = AtomicU64::new(0);
    let evictions = AtomicU64::new(0);

    explainti_pool::global().scope(THREADS, |t| {
        let mut rng = Rng::new(0xC0FFEE + t as u64);
        for _ in 0..OPS_PER_THREAD {
            let key = rng.next() % KEY_SPACE;
            let mut c = cache.lock().unwrap();
            if rng.next().is_multiple_of(3) {
                // Values encode their key, so a cross-wired entry (one
                // key returning another key's value) is detectable.
                if c.insert(key, key * 1_000 + t as u64).is_some() {
                    evictions.fetch_add(1, Ordering::Relaxed);
                }
                inserts.fetch_add(1, Ordering::Relaxed);
            } else {
                match c.get(&key) {
                    Some(&v) => {
                        assert_eq!(
                            v / 1_000,
                            key,
                            "hit on {key} returned a value inserted for {}",
                            v / 1_000
                        );
                        assert!((v % 1_000) < THREADS as u64, "value from unknown thread");
                        hits.fetch_add(1, Ordering::Relaxed);
                    }
                    None => {
                        misses.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            // Capacity invariant at every observation point.
            assert!(c.len() <= c.capacity(), "len {} > cap {}", c.len(), c.capacity());
        }
    });

    let (h, m) = (hits.load(Ordering::Relaxed), misses.load(Ordering::Relaxed));
    let (ins, ev) = (inserts.load(Ordering::Relaxed), evictions.load(Ordering::Relaxed));
    let total = (THREADS * OPS_PER_THREAD) as u64;
    assert_eq!(h + m + ins, total, "every operation is counted exactly once");
    assert!(h > 0 && m > 0 && ev > 0, "workload must exercise hit, miss and evict paths");

    let final_len = cache.lock().unwrap().len() as u64;
    assert!(final_len <= CAPACITY as u64);
    // Distinct keys only ever enter via insert and leave via eviction
    // (replacement of an existing key returns None): live = in - out.
    let replacements = ins - ev - final_len;
    assert!(
        replacements < ins,
        "inserted {ins}, evicted {ev}, live {final_len}: accounting broken"
    );
}

#[test]
fn no_lost_updates_for_disjoint_key_ranges() {
    // Each thread owns a private key range smaller than its fair share
    // of the cache, inserting then immediately reading back. With
    // THREADS * KEYS_EACH <= capacity, nothing is ever evicted, so every
    // update must be observable — a lost update is a hard failure.
    const KEYS_EACH: u64 = 4;
    const N: usize = 8;
    assert!(N as u64 * KEYS_EACH <= 32);
    explainti_pool::configure(N);
    let cache: Mutex<LruCache<u64, u64>> = Mutex::new(LruCache::new(32));
    let evicted = AtomicU64::new(0);

    explainti_pool::global().scope(N, |t| {
        let base = t as u64 * KEYS_EACH;
        for round in 0..500u64 {
            for k in base..base + KEYS_EACH {
                let mut c = cache.lock().unwrap();
                if c.insert(k, round).is_some() {
                    evicted.fetch_add(1, Ordering::Relaxed);
                }
                assert_eq!(c.get(&k), Some(&round), "update to {k} lost in round {round}");
            }
        }
    });

    assert_eq!(evicted.load(Ordering::Relaxed), 0, "working set fits; nothing may be evicted");
    let mut c = cache.lock().unwrap();
    let live: HashSet<u64> = (0..N as u64 * KEYS_EACH).filter(|k| c.get(k).is_some()).collect();
    assert_eq!(live.len(), N * KEYS_EACH as usize, "every owned key survives");
    for k in live {
        assert_eq!(c.get(&k), Some(&499), "final value must be the last round's");
    }
}

#[test]
fn eviction_count_matches_overflow_exactly() {
    // Sequential oracle check runnable under the same harness: insert
    // K distinct keys into a cap-C cache; exactly K - C evictions.
    let cache: Mutex<LruCache<u64, u64>> = Mutex::new(LruCache::new(16));
    let evictions = AtomicU64::new(0);
    explainti_pool::configure(4);
    explainti_pool::global().scope(4, |t| {
        // Disjoint key ranges so "distinct keys" holds across threads.
        for i in 0..64u64 {
            let key = t as u64 * 64 + i;
            if cache.lock().unwrap().insert(key, key).is_some() {
                evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    });
    let total_inserted = 4 * 64u64;
    assert_eq!(evictions.load(Ordering::Relaxed), total_inserted - 16);
    assert_eq!(cache.lock().unwrap().len(), 16);
}
