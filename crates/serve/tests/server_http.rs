//! End-to-end tests for the inference server: raw `TcpStream` clients
//! against a real listener on an ephemeral port.

// Integration tests may panic freely; the crate's unwrap/expect
// lints target the request path (EA006), not test assertions.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use explainti_api::{InterpretTableResponse, PredictResponse};
use explainti_core::{ExplainTi, ExplainTiConfig};
use explainti_serve::{start, ServeConfig};
use serde_json::Value;

fn tiny_model() -> (Arc<ExplainTi>, Vec<String>) {
    let d = explainti_corpus::generate_wiki(&explainti_corpus::WikiConfig {
        num_tables: 40,
        seed: 4242,
        ..Default::default()
    });
    let cfg = ExplainTiConfig::bert_like(2048, 32);
    let mut m = ExplainTi::new(&d, cfg);
    // No training needed — determinism and explanation structure are
    // what's under test. GE needs the embedding store populated.
    for t in 0..m.tasks().len() {
        m.refresh_store(t);
    }
    (Arc::new(m), d.collection.type_labels.clone())
}

/// Splits a raw response into (status, body), de-chunking the body when
/// the head advertises `Transfer-Encoding: chunked` (streamed tables).
fn parse_response(raw: &str) -> (u16, String) {
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable response: {raw:?}"));
    let (head, body) = raw.split_once("\r\n\r\n").unwrap_or((raw, ""));
    let chunked = head
        .lines()
        .any(|l| l.to_ascii_lowercase().trim_start().starts_with("transfer-encoding: chunked"));
    if !chunked {
        return (status, body.to_string());
    }
    let mut out = Vec::new();
    let mut rest = body.as_bytes();
    while let Some(nl) = rest.windows(2).position(|w| w == b"\r\n") {
        let size_line = String::from_utf8_lossy(&rest[..nl]);
        let Ok(size) = usize::from_str_radix(size_line.trim(), 16) else { break };
        if size == 0 {
            break;
        }
        rest = &rest[nl + 2..];
        assert!(rest.len() >= size + 2, "truncated chunk in {raw:?}");
        out.extend_from_slice(&rest[..size]);
        rest = &rest[size + 2..];
    }
    (status, String::from_utf8_lossy(&out).into_owned())
}

/// One HTTP/1.1 exchange over a fresh connection (`Connection: close`,
/// so EOF delimits the response).
fn request(addr: &std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    parse_response(&request_raw(addr, method, path, body))
}

/// Like [`request`], but returns the unparsed response (headers + body)
/// for assertions on `X-Trace-Id`.
fn request_raw(addr: &std::net::SocketAddr, method: &str, path: &str, body: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let msg = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(msg.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    raw
}

/// Extracts the `X-Trace-Id` header value from a raw response.
fn trace_id_of(raw: &str) -> Option<&str> {
    raw.split("\r\n\r\n").next().and_then(|head| {
        head.lines()
            .filter_map(|l| l.split_once(':'))
            .find(|(k, _)| k.trim().eq_ignore_ascii_case("x-trace-id"))
            .map(|(_, v)| v.trim())
    })
}

#[test]
fn serves_interpret_cache_metrics_errors_and_shutdown() {
    let (model, labels) = tiny_model();
    let cfg = ServeConfig {
        workers: 2,
        queue_cap: 16,
        max_batch: 4,
        cache_cap: 32,
        deadline_ms: 30_000,
        ..Default::default()
    };
    let mut handle = start(Arc::clone(&model), labels.clone(), cfg).expect("start server");
    let addr = handle.addr();

    // Health check.
    let (status, body) = request(&addr, "GET", "/v1/healthz", "");
    assert_eq!(status, 200);
    assert!(body.contains("ok"), "healthz body: {body}");

    // Cold single-column interpret.
    let col = r#"{"title":"1994 world cup","header":"country","cells":["costa rica","morocco","norway"]}"#;
    let (status, body) = request(&addr, "POST", "/v1/interpret", col);
    assert_eq!(status, 200, "interpret failed: {body}");
    let served: PredictResponse = serde_json::from_str(&body).expect("response deserialises");
    assert!(served.label_id < labels.len());
    assert!(!served.local.is_empty(), "local explanations missing");
    assert!(!served.global.is_empty(), "global explanations missing");

    // The server's answer is byte-identical to the in-process prediction
    // path the CLI `interpret` command uses.
    let direct =
        model.predict_column("1994 world cup", "country", &["costa rica", "morocco", "norway"]);
    let direct_resp =
        PredictResponse::from_prediction(&direct, &labels, explainti_api::DEFAULT_TOP_K);
    assert_eq!(body, serde_json::to_string(&direct_resp).unwrap());

    // Repeat request: identical answer, now a cache hit in /v1/metrics.
    let (status, body2) = request(&addr, "POST", "/v1/interpret", col);
    assert_eq!(status, 200);
    assert_eq!(body2, body);
    let (status, metrics) = request(&addr, "GET", "/v1/metrics", "");
    assert_eq!(status, 200);
    let metrics: Value = serde_json::from_str(&metrics).unwrap();
    let hits = metrics
        .get("counters")
        .and_then(|c| c.get("serve.cache.hit"))
        .and_then(Value::as_u64)
        .unwrap_or(0);
    assert!(hits >= 1, "expected a cache hit, metrics: {metrics:?}");

    // Whole table: per-column answers match the single-column path.
    let table = r#"{"title":"1994 world cup","columns":[
        {"header":"country","cells":["costa rica","morocco","norway"]},
        {"header":"rank","cells":["1","2","3"]}]}"#;
    let (status, body) = request(&addr, "POST", "/v1/interpret", table);
    assert_eq!(status, 200, "table interpret failed: {body}");
    let table_resp: InterpretTableResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(table_resp.columns.len(), 2);
    assert_eq!(table_resp.columns[0].header, "country");
    assert_eq!(table_resp.columns[0].prediction.label, served.label);

    // Error paths.
    let (status, body) = request(&addr, "POST", "/v1/interpret", "{not json");
    assert_eq!(status, 400, "body: {body}");
    assert!(body.contains("BadRequest"));
    let (status, _) = request(&addr, "POST", "/v1/interpret", r#"{"wrong":"shape"}"#);
    assert_eq!(status, 400);
    let raw = request_raw(&addr, "GET", "/v1/nope", "");
    assert!(raw.starts_with("HTTP/1.1 404"), "raw: {raw}");
    let tid = trace_id_of(&raw).expect("404 carries X-Trace-Id");
    assert!(raw.contains(&format!("\"trace_id\":\"{tid}\"")), "404 body echoes id: {raw}");
    let raw = request_raw(&addr, "GET", "/v1/interpret", "");
    assert!(raw.starts_with("HTTP/1.1 405"), "raw: {raw}");
    let tid = trace_id_of(&raw).expect("405 carries X-Trace-Id");
    assert!(raw.contains(&format!("\"trace_id\":\"{tid}\"")), "405 body echoes id: {raw}");

    // Graceful shutdown via the endpoint; join() must return.
    let (status, _) = request(&addr, "POST", "/v1/shutdown", "");
    assert_eq!(status, 200);
    handle.join();
    assert!(
        TcpStream::connect(addr).is_err() || {
            // Some platforms accept briefly during teardown; a request
            // must at least not be served.
            let mut s = TcpStream::connect(addr).unwrap();
            s.write_all(b"GET /v1/healthz HTTP/1.1\r\n\r\n").ok();
            let mut out = String::new();
            s.read_to_string(&mut out).ok();
            out.is_empty()
        },
        "server still answering after shutdown"
    );
}

#[test]
fn config_endpoint_reports_effective_knobs() {
    let (model, labels) = tiny_model();
    let cfg = ServeConfig {
        workers: 3,
        queue_cap: 17,
        max_batch: 5,
        cache_cap: 33,
        deadline_ms: 12_345,
        threads: 2,
        ..Default::default()
    };
    let mut handle = start(Arc::clone(&model), labels.clone(), cfg).expect("start server");
    let addr = handle.addr();

    let (status, body) = request(&addr, "GET", "/v1/config", "");
    assert_eq!(status, 200, "config failed: {body}");
    let config: explainti_api::ConfigResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(config.schema_version, explainti_api::SCHEMA_VERSION);
    assert_eq!(config.workers, 3);
    assert_eq!(config.threads, 2);
    assert_eq!(config.queue_cap, 17);
    assert_eq!(config.max_batch, 5);
    assert_eq!(config.cache_cap, 33);
    assert_eq!(config.deadline_ms, 12_345);
    assert_eq!(config.model.num_labels, labels.len());
    assert_eq!(config.model.vocab_size, model.tokenizer.vocab_size());
    assert_eq!(config.model.num_weights, model.num_weights());
    assert!(config.model.d_model > 0 && config.model.layers > 0);

    // POST on a GET endpoint is a 405, and /v1/metrics carries the wire
    // version so scrapers can detect format changes.
    let (status, _) = request(&addr, "POST", "/v1/config", "");
    assert_eq!(status, 405);
    let (status, metrics) = request(&addr, "GET", "/v1/metrics", "");
    assert_eq!(status, 200);
    let metrics: Value = serde_json::from_str(&metrics).unwrap();
    assert_eq!(
        metrics.get("schema_version").and_then(Value::as_u64),
        Some(explainti_api::SCHEMA_VERSION as u64)
    );

    // The same endpoint negotiates Prometheus exposition via the query
    // string, including the rolling SLO gauges.
    let raw = request_raw(&addr, "GET", "/v1/metrics?format=prometheus", "");
    assert!(raw.starts_with("HTTP/1.1 200"), "raw: {raw}");
    assert!(raw.contains("text/plain; version=0.0.4"), "raw head: {raw}");
    let prom = raw.split_once("\r\n\r\n").map(|(_, b)| b).unwrap_or_default();
    assert!(prom.contains("# TYPE serve_slo_window_s gauge"), "prometheus body: {prom}");
    assert!(prom.contains("serve_slo_p99_ms"), "prometheus body: {prom}");

    handle.shutdown();
    handle.join();

    // Restore the process-wide pool for the other tests in this binary.
    explainti_pool::configure(explainti_pool::Threads::resolve(None).get());
}

/// The acceptance gate for the parallel kernels: the same requests
/// served with `--threads 1` and `--threads 4` must produce
/// byte-identical response bodies.
#[test]
fn parallel_and_serial_serving_are_byte_identical() {
    let (model, labels) = tiny_model();
    let table = r#"{"title":"1998 world cup","columns":[
        {"header":"country","cells":["france","brazil","croatia"]},
        {"header":"goals","cells":["15","14","11"]},
        {"header":"coach","cells":["jacquet","zagallo","blazevic"]}]}"#;
    let col = r#"{"title":"grand prix","header":"driver","cells":["senna","prost"]}"#;

    let serve_once = |threads: usize| {
        let cfg = ServeConfig {
            workers: 2,
            // Fresh cache per run: answers must match because the compute
            // matches, not because one run replays the other's cache.
            cache_cap: 4,
            threads,
            ..Default::default()
        };
        let mut handle = start(Arc::clone(&model), labels.clone(), cfg).expect("start server");
        let addr = handle.addr();
        let (s1, single) = request(&addr, "POST", "/v1/interpret", col);
        let (s2, multi) = request(&addr, "POST", "/v1/interpret", table);
        assert_eq!((s1, s2), (200, 200), "bodies: {single} / {multi}");
        handle.shutdown();
        handle.join();
        (single, multi)
    };

    let serial = serve_once(1);
    let parallel = serve_once(4);
    assert_eq!(serial.0, parallel.0, "single-column response diverged across thread counts");
    assert_eq!(serial.1, parallel.1, "table response diverged across thread counts");

    explainti_pool::configure(explainti_pool::Threads::resolve(None).get());
}

#[test]
fn full_queue_returns_503_without_hanging() {
    let (model, labels) = tiny_model();
    // No workers: nothing drains the queue, so capacity 2 overflows on
    // the third column of a five-column table — deterministically.
    let cfg = ServeConfig { workers: 0, queue_cap: 2, ..Default::default() };
    let mut handle = start(model, labels, cfg).expect("start server");
    let addr = handle.addr();

    let table = r#"{"title":"t","columns":[
        {"header":"a","cells":["1"]},{"header":"b","cells":["2"]},
        {"header":"c","cells":["3"]},{"header":"d","cells":["4"]},
        {"header":"e","cells":["5"]}]}"#;
    let raw = request_raw(&addr, "POST", "/v1/interpret", table);
    assert!(raw.starts_with("HTTP/1.1 503"), "raw: {raw}");
    assert!(raw.contains("QueueFull"), "raw: {raw}");
    let tid = trace_id_of(&raw).expect("503 carries X-Trace-Id");
    assert!(raw.contains(&format!("\"trace_id\":\"{tid}\"")), "503 body echoes id: {raw}");

    handle.shutdown();
    handle.join();
}

#[test]
fn concurrent_clients_all_get_answers() {
    let (model, labels) = tiny_model();
    let cfg = ServeConfig {
        workers: 2,
        queue_cap: 32,
        max_batch: 8,
        deadline_ms: 60_000,
        ..Default::default()
    };
    let mut handle = start(model, labels.clone(), cfg).expect("start server");
    let addr = handle.addr();

    let clients: Vec<_> = (0..6)
        .map(|i| {
            std::thread::spawn(move || {
                let body = format!(
                    r#"{{"title":"table {i}","header":"col{i}","cells":["v{i}a","v{i}b"]}}"#
                );
                request(&addr, "POST", "/v1/interpret", &body)
            })
        })
        .collect();
    for c in clients {
        let (status, body) = c.join().unwrap();
        assert_eq!(status, 200, "body: {body}");
        let resp: PredictResponse = serde_json::from_str(&body).unwrap();
        assert!(resp.label_id < labels.len());
    }

    handle.shutdown();
    handle.join();
}
