//! Connection-layer semantics of the epoll front-end: HTTP/1.1
//! keep-alive (two requests, one socket), pipelining (responses in
//! request order), the slow-loris read deadline (typed 408), the hard
//! connection limit (typed 429 + `Retry-After`), and chunked streaming
//! of table responses (with the HTTP/1.0 buffered fallback).

// Integration tests may panic freely; the crate's unwrap/expect
// lints target the request path (EA006), not test assertions.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use explainti_core::{ExplainTi, ExplainTiConfig};
use explainti_serve::{start, ServeConfig};
use serde_json::Value;

fn tiny_model() -> (Arc<ExplainTi>, Vec<String>) {
    let d = explainti_corpus::generate_wiki(&explainti_corpus::WikiConfig {
        num_tables: 16,
        seed: 4242,
        ..Default::default()
    });
    let mut m = ExplainTi::new(&d, ExplainTiConfig::bert_like(2048, 32));
    for t in 0..m.tasks().len() {
        m.refresh_store(t);
    }
    (Arc::new(m), d.collection.type_labels.clone())
}

/// One parsed response off a persistent connection.
struct Response {
    status: u16,
    headers: Vec<(String, String)>,
    body: String,
}

impl Response {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
    }
}

/// A keep-alive client: frames responses by `Content-Length` or chunked
/// encoding instead of reading to EOF, so one socket serves many
/// requests and pipelined responses can be peeled off in order.
struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Client {
    fn connect(addr: &std::net::SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        Self { stream, buf: Vec::new() }
    }

    fn send(&mut self, text: &str) {
        self.stream.write_all(text.as_bytes()).unwrap();
    }

    fn request_text(method: &str, path: &str, body: &str) -> String {
        format!(
            "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        )
    }

    /// Reads more bytes; panics on EOF (callers expect a response).
    fn fill(&mut self) {
        let mut scratch = [0u8; 8192];
        let n = self.stream.read(&mut scratch).expect("read");
        assert!(
            n > 0,
            "connection closed mid-response; buffered: {:?}",
            String::from_utf8_lossy(&self.buf)
        );
        self.buf.extend_from_slice(&scratch[..n]);
    }

    fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
        haystack.windows(needle.len()).position(|w| w == needle)
    }

    /// Consumes exactly one response from the stream.
    fn read_response(&mut self) -> Response {
        let head_end = loop {
            if let Some(pos) = Self::find(&self.buf, b"\r\n\r\n") {
                break pos;
            }
            self.fill();
        };
        let head = String::from_utf8_lossy(&self.buf[..head_end]).into_owned();
        self.buf.drain(..head_end + 4);
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("unparseable head: {head:?}"));
        let headers: Vec<(String, String)> = head
            .lines()
            .skip(1)
            .filter_map(|l| l.split_once(':'))
            .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
            .collect();
        let chunked = headers
            .iter()
            .any(|(k, v)| k == "transfer-encoding" && v.eq_ignore_ascii_case("chunked"));
        let body = if chunked {
            let mut out = Vec::new();
            loop {
                let nl = loop {
                    if let Some(pos) = Self::find(&self.buf, b"\r\n") {
                        break pos;
                    }
                    self.fill();
                };
                let size_line = String::from_utf8_lossy(&self.buf[..nl]).into_owned();
                let size = usize::from_str_radix(size_line.trim(), 16)
                    .unwrap_or_else(|_| panic!("bad chunk size line: {size_line:?}"));
                self.buf.drain(..nl + 2);
                while self.buf.len() < size + 2 {
                    self.fill();
                }
                if size == 0 {
                    self.buf.drain(..2);
                    break;
                }
                out.extend_from_slice(&self.buf[..size]);
                self.buf.drain(..size + 2);
            }
            out
        } else {
            let len: usize = headers
                .iter()
                .find(|(k, _)| k == "content-length")
                .and_then(|(_, v)| v.parse().ok())
                .unwrap_or(0);
            while self.buf.len() < len {
                self.fill();
            }
            let body: Vec<u8> = self.buf.drain(..len).collect();
            body
        };
        Response { status, headers, body: String::from_utf8_lossy(&body).into_owned() }
    }
}

#[test]
fn keep_alive_serves_multiple_requests_on_one_socket() {
    let (model, labels) = tiny_model();
    let cfg = ServeConfig { workers: 1, ..Default::default() };
    let mut handle = start(model, labels, cfg).expect("start server");
    let addr = handle.addr();

    let mut client = Client::connect(&addr);
    let col = r#"{"title":"cities","header":"city","cells":["london","paris"]}"#;
    client.send(&Client::request_text("POST", "/v1/interpret", col));
    let first = client.read_response();
    assert_eq!(first.status, 200, "body: {}", first.body);
    assert_eq!(first.header("connection"), Some("keep-alive"));

    // Same socket, second request: the reuse shows up in /v1/metrics
    // (the counter increments when this very request dispatches).
    client.send(&Client::request_text("GET", "/v1/metrics", ""));
    let second = client.read_response();
    assert_eq!(second.status, 200);
    let metrics: Value = serde_json::from_str(&second.body).unwrap();
    let reused = metrics
        .get("counters")
        .and_then(|c| c.get("serve.keepalive.reused"))
        .and_then(Value::as_u64)
        .unwrap_or(0);
    assert!(reused >= 1, "keep-alive reuse not counted: {metrics:?}");

    // Trace ids stay per-request, not per-connection.
    assert_ne!(first.header("x-trace-id"), second.header("x-trace-id"));

    handle.shutdown();
    handle.join();
}

#[test]
fn pipelined_requests_are_answered_in_order() {
    let (model, labels) = tiny_model();
    let cfg = ServeConfig { workers: 1, ..Default::default() };
    let mut handle = start(model, labels, cfg).expect("start server");
    let addr = handle.addr();

    // Three requests in one write, before reading anything. The replies
    // must come back in request order on the same socket.
    let mut client = Client::connect(&addr);
    let mut batch = String::new();
    batch.push_str(&Client::request_text("GET", "/v1/healthz", ""));
    batch.push_str(&Client::request_text(
        "POST",
        "/v1/interpret",
        r#"{"title":"t","header":"city","cells":["london"]}"#,
    ));
    batch.push_str(&Client::request_text("GET", "/v1/config", ""));
    client.send(&batch);

    let first = client.read_response();
    assert_eq!(first.status, 200);
    assert!(first.body.contains("\"status\":\"ok\""), "healthz first: {}", first.body);
    let second = client.read_response();
    assert_eq!(second.status, 200, "body: {}", second.body);
    assert!(second.body.contains("\"label\""), "interpret second: {}", second.body);
    let third = client.read_response();
    assert_eq!(third.status, 200);
    assert!(third.body.contains("\"queue_cap\""), "config third: {}", third.body);

    handle.shutdown();
    handle.join();
}

#[test]
fn slow_loris_read_deadline_answers_typed_408() {
    let (model, labels) = tiny_model();
    let cfg = ServeConfig { workers: 1, read_timeout_ms: 150, ..Default::default() };
    let mut handle = start(model, labels, cfg).expect("start server");
    let addr = handle.addr();

    // Trickle an incomplete request and stall: head promises 100 body
    // bytes that never arrive.
    let mut client = Client::connect(&addr);
    client.send("POST /v1/interpret HTTP/1.1\r\nHost: t\r\nContent-Length: 100\r\n\r\nabc");
    let resp = client.read_response();
    assert_eq!(resp.status, 408, "body: {}", resp.body);
    assert!(resp.body.contains("RequestTimeout"), "typed code expected: {}", resp.body);
    assert!(resp.body.contains("\"retry_after_s\":1"), "typed retry hint: {}", resp.body);
    assert_eq!(resp.header("retry-after"), Some("1"), "Retry-After header");
    assert_eq!(resp.header("connection"), Some("close"));
    // The server closes the connection after the 408.
    let mut rest = Vec::new();
    let _ = client.stream.read_to_end(&mut rest);
    assert!(rest.is_empty(), "unexpected bytes after 408: {rest:?}");

    // A well-behaved client on a fresh socket is unaffected.
    let mut ok = Client::connect(&addr);
    ok.send(&Client::request_text("GET", "/v1/healthz", ""));
    assert_eq!(ok.read_response().status, 200);

    handle.shutdown();
    handle.join();
}

#[test]
fn stalled_connection_gets_exactly_one_408_then_close() {
    let (model, labels) = tiny_model();
    let cfg = ServeConfig { workers: 1, read_timeout_ms: 100, ..Default::default() };
    let mut handle = start(model, labels, cfg).expect("start server");
    let addr = handle.addr();

    // Stall past the deadline WITHOUT reading, across many sweep ticks.
    // A quiesced connection must emit exactly one 408 and close — not
    // re-enqueue a fresh response every 50ms tick.
    let mut client = Client::connect(&addr);
    client.send("POST /v1/interpret HTTP/1.1\r\nHost: t\r\nContent-Length: 100\r\n\r\nabc");
    std::thread::sleep(Duration::from_millis(700));
    let mut raw = Vec::new();
    client.stream.read_to_end(&mut raw).expect("server closes after the 408");
    let text = String::from_utf8_lossy(&raw);
    let count_408 = text.matches("HTTP/1.1 408").count();
    assert_eq!(count_408, 1, "expected exactly one 408, got {count_408}: {text}");

    // Same for a malformed stream: one 400, then close, even if the
    // client keeps writing garbage afterwards.
    let mut bad = Client::connect(&addr);
    bad.send("NOT-HTTP garbage\r\n\r\n");
    std::thread::sleep(Duration::from_millis(300));
    let _ = bad.stream.write_all(b"more garbage\r\n\r\n");
    std::thread::sleep(Duration::from_millis(300));
    let mut raw = Vec::new();
    let _ = bad.stream.read_to_end(&mut raw);
    let text = String::from_utf8_lossy(&raw);
    let count_400 = text.matches("HTTP/1.1 400").count();
    assert_eq!(count_400, 1, "expected exactly one 400, got {count_400}: {text}");

    handle.shutdown();
    handle.join();
}

#[test]
fn connection_limit_answers_typed_429_with_retry_after() {
    let (model, labels) = tiny_model();
    let cfg = ServeConfig { workers: 1, max_conns: 2, ..Default::default() };
    let mut handle = start(model, labels, cfg).expect("start server");
    let addr = handle.addr();

    // Fill the limit with two healthy connections and prove they are
    // admitted (each answers a request, so both are registered).
    let mut first = Client::connect(&addr);
    first.send(&Client::request_text("GET", "/v1/healthz", ""));
    assert_eq!(first.read_response().status, 200);
    let mut second = Client::connect(&addr);
    second.send(&Client::request_text("GET", "/v1/healthz", ""));
    assert_eq!(second.read_response().status, 200);

    // The third connection is over the limit: typed 429, Retry-After,
    // and an immediate close.
    let mut third = Client::connect(&addr);
    let resp = third.read_response();
    assert_eq!(resp.status, 429, "body: {}", resp.body);
    assert!(resp.body.contains("TooManyConnections"), "typed code expected: {}", resp.body);
    assert!(resp.body.contains("\"retry_after_s\":1"), "typed retry hint: {}", resp.body);
    assert_eq!(resp.header("retry-after"), Some("1"), "Retry-After header");
    let mut rest = Vec::new();
    let _ = third.stream.read_to_end(&mut rest);
    assert!(rest.is_empty(), "connection must close after the 429");

    // Freeing a slot restores admission.
    drop(first);
    std::thread::sleep(Duration::from_millis(200));
    let mut fourth = Client::connect(&addr);
    fourth.send(&Client::request_text("GET", "/v1/healthz", ""));
    assert_eq!(fourth.read_response().status, 200, "slot not reclaimed after close");

    handle.shutdown();
    handle.join();
}

#[test]
fn table_responses_stream_chunked_and_match_buffered_http10() {
    let (model, labels) = tiny_model();
    let cfg = ServeConfig { workers: 2, ..Default::default() };
    let mut handle = start(model, labels, cfg).expect("start server");
    let addr = handle.addr();

    let table = r#"{"title":"cup","columns":[
        {"header":"country","cells":["france","brazil"]},
        {"header":"rank","cells":["1","2"]}]}"#;

    // HTTP/1.1: chunked transfer-encoding, no Content-Length.
    let mut client = Client::connect(&addr);
    client.send(&Client::request_text("POST", "/v1/interpret", table));
    let chunked = client.read_response();
    assert_eq!(chunked.status, 200, "body: {}", chunked.body);
    assert_eq!(chunked.header("transfer-encoding"), Some("chunked"));
    assert_eq!(chunked.header("content-length"), None);
    let parsed: explainti_api::InterpretTableResponse =
        serde_json::from_str(&chunked.body).expect("streamed body is one JSON document");
    assert_eq!(parsed.columns.len(), 2);
    assert_eq!(parsed.schema_version, explainti_api::SCHEMA_VERSION);

    // The streamed bytes are identical to the serde serialization of
    // the assembled response (field order and all).
    assert_eq!(chunked.body, serde_json::to_string(&parsed).unwrap());

    // HTTP/1.0 client: buffered fallback with Content-Length, same body.
    let mut stream = TcpStream::connect(addr).unwrap();
    let msg = format!(
        "POST /v1/interpret HTTP/1.0\r\nHost: t\r\nContent-Length: {}\r\n\r\n{table}",
        table.len()
    );
    stream.write_all(msg.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let (head, body10) = raw.split_once("\r\n\r\n").unwrap();
    assert!(head.contains("Content-Length:"), "HTTP/1.0 must get a fixed body: {head}");
    assert!(!head.to_ascii_lowercase().contains("chunked"), "no chunking for HTTP/1.0: {head}");
    assert_eq!(body10, chunked.body, "buffered and streamed bodies must match");

    handle.shutdown();
    handle.join();
}
