//! Zero-downtime model-swap semantics against a live server: a swap
//! installs a new generation atomically, in-flight requests finish on
//! the generation they started on, failed swaps roll back, and the v3
//! admin routes (swap / store / shutdown alias) answer typed responses.
//!
//! The failpoint registry is process-global, so every failpoint-driven
//! test serialises on one mutex and clears the registry around its
//! drill.

// Integration tests may panic freely; the crate's unwrap/expect
// lints target the request path (EA006), not test assertions.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::io::{Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::sync::{Arc, Mutex, MutexGuard};

use explainti_api::{StoreStatusResponse, SwapResponse};
use explainti_core::{ExplainTi, ExplainTiConfig};
use explainti_corpus::{generate_wiki, Dataset, WikiConfig};
use explainti_faults as faults;
use explainti_serve::{start, ServeConfig};

fn lock() -> MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

fn tiny(seed: u64) -> (ExplainTi, Dataset) {
    let d = generate_wiki(&WikiConfig { num_tables: 16, seed, ..Default::default() });
    let mut m = ExplainTi::new(&d, ExplainTiConfig::bert_like(2048, 32));
    for t in 0..m.tasks().len() {
        m.refresh_store(t);
    }
    (m, d)
}

/// Saves a fresh tiny model (seeded corpus) to a scratch dir and
/// returns the dir — a valid swap candidate.
fn saved_model_dir(tag: &str, seed: u64) -> PathBuf {
    let dir =
        std::env::temp_dir().join(format!("explainti-swap-{tag}-{seed}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let (model, dataset) = tiny(seed);
    model.save_to_dir(&dir, &dataset).expect("save swap candidate");
    dir
}

fn request_raw(addr: &std::net::SocketAddr, method: &str, path: &str, body: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let msg = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(msg.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    raw
}

fn request(addr: &std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let raw = request_raw(addr, method, path, body);
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable response: {raw:?}"));
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

fn header_of<'a>(raw: &'a str, name: &str) -> Option<&'a str> {
    raw.split("\r\n\r\n").next().and_then(|head| {
        head.lines()
            .filter_map(|l| l.split_once(':'))
            .find(|(k, _)| k.trim().eq_ignore_ascii_case(name))
            .map(|(_, v)| v.trim())
    })
}

fn generation_of(raw: &str) -> Option<u64> {
    header_of(raw, "x-model-generation").and_then(|v| v.parse().ok())
}

fn boot_server(cfg: ServeConfig) -> (explainti_serve::ServerHandle, std::net::SocketAddr) {
    let (model, dataset) = tiny(4242);
    let labels = dataset.collection.type_labels.clone();
    let handle = start(Arc::new(model), labels, cfg).expect("start server");
    let addr = handle.addr();
    (handle, addr)
}

const COL: &str =
    r#"{"title":"1994 world cup","header":"country","cells":["costa rica","morocco"]}"#;

#[test]
fn swap_installs_new_generation_and_next_requests_see_it() {
    let _guard = lock();
    faults::clear_all();
    let candidate = saved_model_dir("happy", 7);
    let (mut handle, addr) = boot_server(ServeConfig { workers: 2, ..Default::default() });

    // Boot generation is 1, on the config body and the response header.
    let raw = request_raw(&addr, "GET", "/v1/config", "");
    assert!(raw.starts_with("HTTP/1.1 200"), "raw: {raw}");
    assert_eq!(generation_of(&raw), Some(1));
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b).unwrap_or_default();
    let config: explainti_api::ConfigResponse = serde_json::from_str(body).unwrap();
    assert_eq!(config.model.generation, 1);
    assert_eq!((config.shards, config.replicas), (1, 1));
    assert!(config.swap_verify);

    let raw = request_raw(&addr, "POST", "/v1/interpret", COL);
    assert!(raw.starts_with("HTTP/1.1 200"), "raw: {raw}");
    assert_eq!(generation_of(&raw), Some(1));

    // Swap to the saved candidate: 1 → 2, verified.
    let swap_body = format!(
        r#"{{"model_dir":{}}}"#,
        serde_json::to_string(&candidate.display().to_string()).unwrap()
    );
    let (status, body) = request(&addr, "POST", "/v1/admin/swap", &swap_body);
    assert_eq!(status, 200, "swap failed: {body}");
    let swap: SwapResponse = serde_json::from_str(&body).unwrap();
    assert_eq!((swap.previous_generation, swap.generation), (1, 2));
    assert!(swap.verified);

    // The very next request serves — and reports — generation 2.
    let raw = request_raw(&addr, "POST", "/v1/interpret", COL);
    assert!(raw.starts_with("HTTP/1.1 200"), "raw: {raw}");
    assert_eq!(generation_of(&raw), Some(2));
    let (status, body) = request(&addr, "GET", "/v1/config", "");
    assert_eq!(status, 200);
    let config: explainti_api::ConfigResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(config.model.generation, 2);

    // Wrong methods on the admin routes answer 405 with a derived Allow.
    let raw = request_raw(&addr, "GET", "/v1/admin/swap", "");
    assert!(raw.starts_with("HTTP/1.1 405"), "raw: {raw}");
    assert_eq!(header_of(&raw, "allow"), Some("POST"));
    let raw = request_raw(&addr, "POST", "/v1/admin/store", "");
    assert!(raw.starts_with("HTTP/1.1 405"), "raw: {raw}");
    assert_eq!(header_of(&raw, "allow"), Some("GET"));

    let _ = std::fs::remove_dir_all(&candidate);
    handle.shutdown();
    handle.join();
}

#[test]
fn in_flight_request_finishes_on_the_old_generation() {
    let _guard = lock();
    faults::clear_all();
    let candidate = saved_model_dir("inflight", 9);
    let (mut handle, addr) = boot_server(ServeConfig { workers: 1, ..Default::default() });

    // Stall the prediction batch so the interpret request is guaranteed
    // to still be in flight — already dispatched, generation snapshotted
    // — while the swap loads and commits.
    faults::configure("serve.batch.slow", faults::Policy::Always);
    let inflight = std::thread::spawn(move || request_raw(&addr, "POST", "/v1/interpret", COL));
    // Give the dispatcher time to pick the request up before swapping.
    std::thread::sleep(std::time::Duration::from_millis(20));
    let swap_body = format!(
        r#"{{"model_dir":{}}}"#,
        serde_json::to_string(&candidate.display().to_string()).unwrap()
    );
    let (status, body) = request(&addr, "POST", "/v1/admin/swap", &swap_body);
    assert_eq!(status, 200, "swap failed: {body}");
    let swap: SwapResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(swap.generation, 2);

    // The pre-swap request completed successfully on generation 1.
    let raw = inflight.join().unwrap();
    assert!(raw.starts_with("HTTP/1.1 200"), "in-flight request failed: {raw}");
    assert_eq!(generation_of(&raw), Some(1), "in-flight request jumped generations: {raw}");
    faults::clear_all();

    // And the generation after it is 2.
    let raw = request_raw(&addr, "POST", "/v1/interpret", COL);
    assert_eq!(generation_of(&raw), Some(2));

    let _ = std::fs::remove_dir_all(&candidate);
    handle.shutdown();
    handle.join();
}

#[test]
fn failed_swaps_roll_back_and_report_typed_errors() {
    let _guard = lock();
    faults::clear_all();
    let candidate = saved_model_dir("rollback", 11);
    let (mut handle, addr) = boot_server(ServeConfig { workers: 1, ..Default::default() });
    let swap_body = format!(
        r#"{{"model_dir":{}}}"#,
        serde_json::to_string(&candidate.display().to_string()).unwrap()
    );

    // Load failure: 400, generation unchanged.
    faults::configure("serve.swap.load", faults::Policy::Times(1));
    let (status, body) = request(&addr, "POST", "/v1/admin/swap", &swap_body);
    assert_eq!(status, 400, "body: {body}");
    assert!(body.contains("BadRequest"), "body: {body}");

    // Verify failure: 400, generation unchanged.
    faults::configure("serve.swap.verify", faults::Policy::Times(1));
    let (status, body) = request(&addr, "POST", "/v1/admin/swap", &swap_body);
    assert_eq!(status, 400, "body: {body}");

    // Commit failure: 500 and rollback — the old generation serves on.
    faults::configure("serve.swap.commit", faults::Policy::Times(1));
    let (status, body) = request(&addr, "POST", "/v1/admin/swap", &swap_body);
    assert_eq!(status, 500, "body: {body}");
    assert!(body.contains("previous generation still serving"), "body: {body}");
    let raw = request_raw(&addr, "POST", "/v1/interpret", COL);
    assert!(raw.starts_with("HTTP/1.1 200"), "raw: {raw}");
    assert_eq!(generation_of(&raw), Some(1), "rollback must keep generation 1");

    // A nonexistent snapshot dir is a clean 400 (no failpoint needed).
    let (status, body) =
        request(&addr, "POST", "/v1/admin/swap", r#"{"model_dir":"/nonexistent/snapshot"}"#);
    assert_eq!(status, 400, "body: {body}");

    // With the registry clear the same candidate swaps in fine.
    faults::clear_all();
    let (status, body) = request(&addr, "POST", "/v1/admin/swap", &swap_body);
    assert_eq!(status, 200, "post-drill swap failed: {body}");
    let swap: SwapResponse = serde_json::from_str(&body).unwrap();
    assert_eq!((swap.previous_generation, swap.generation), (1, 2));

    let _ = std::fs::remove_dir_all(&candidate);
    handle.shutdown();
    handle.join();
}

#[test]
fn store_status_reports_shards_and_typed_unavailability() {
    let _guard = lock();
    faults::clear_all();
    let (model, dataset) = {
        let d = generate_wiki(&WikiConfig { num_tables: 16, seed: 21, ..Default::default() });
        let mut m =
            ExplainTi::new(&d, ExplainTiConfig::bert_like(2048, 32).with_store_layout(4, 2));
        for t in 0..m.tasks().len() {
            m.refresh_store(t);
        }
        (m, d)
    };
    let labels = dataset.collection.type_labels.clone();
    let cfg = ServeConfig { workers: 1, shards: 4, replicas: 2, ..Default::default() };
    let mut handle = start(Arc::new(model), labels, cfg).expect("start server");
    let addr = handle.addr();

    let (status, body) = request(&addr, "GET", "/v1/admin/store", "");
    assert_eq!(status, 200, "store status failed: {body}");
    let store: StoreStatusResponse = serde_json::from_str(&body).unwrap();
    assert_eq!(store.generation, 1);
    assert_eq!(store.shards.len(), 4);
    assert!(!store.swap_in_progress);
    assert!(store.stored > 0);
    // Two replicas: per-shard entries sum to twice the distinct count.
    let replicated: usize = store.shards.iter().map(|s| s.stored).sum();
    assert_eq!(replicated, store.stored * 2);

    // A downed shard answers a typed 503 with Retry-After.
    faults::configure("store.shard.unavailable", faults::Policy::Times(1));
    let raw = request_raw(&addr, "GET", "/v1/admin/store", "");
    assert!(raw.starts_with("HTTP/1.1 503"), "raw: {raw}");
    assert!(raw.contains("ShardUnavailable"), "raw: {raw}");
    assert!(header_of(&raw, "retry-after").is_some(), "raw: {raw}");
    faults::clear_all();

    let (status, _) = request(&addr, "GET", "/v1/admin/store", "");
    assert_eq!(status, 200, "store must recover once the fault clears");

    handle.shutdown();
    handle.join();
}

#[test]
fn shutdown_moved_to_admin_with_deprecated_alias() {
    let _guard = lock();
    faults::clear_all();
    // Old path still works but is marked deprecated.
    let (mut handle, addr) = boot_server(ServeConfig { workers: 1, ..Default::default() });
    let raw = request_raw(&addr, "POST", "/v1/shutdown", "");
    assert!(raw.starts_with("HTTP/1.1 200"), "raw: {raw}");
    assert_eq!(header_of(&raw, "deprecation"), Some("true"), "raw: {raw}");
    handle.join();

    // New path works and is not marked deprecated.
    let (mut handle, addr) = boot_server(ServeConfig { workers: 1, ..Default::default() });
    let raw = request_raw(&addr, "POST", "/v1/admin/shutdown", "");
    assert!(raw.starts_with("HTTP/1.1 200"), "raw: {raw}");
    assert!(header_of(&raw, "deprecation").is_none(), "raw: {raw}");
    handle.join();
}

#[test]
fn invalid_shard_layout_is_rejected_at_startup() {
    let (model, dataset) = tiny(4242);
    let labels = dataset.collection.type_labels.clone();
    let cfg = ServeConfig { shards: 2, replicas: 3, ..Default::default() };
    match start(Arc::new(model), labels, cfg) {
        Ok(_) => panic!("replicas > shards must not bind"),
        Err(err) => assert_eq!(err.kind(), std::io::ErrorKind::InvalidInput),
    }
}
