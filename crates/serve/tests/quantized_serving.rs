//! Serving-layer semantics of the int8 quantized path: `/v1/config`
//! reports the knob, predictions still answer 200 with full
//! explanations, and — the zero-heap-churn contract — the per-thread
//! bump arena stops growing once warm: 100 keep-alive requests leave the
//! `nn.arena.bytes` gauge exactly where warm-up put it.

// Integration tests may panic freely; the crate's unwrap/expect
// lints target the request path (EA006), not test assertions.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use explainti_core::{ExplainTi, ExplainTiConfig};
use explainti_serve::{start, ServeConfig};
use serde_json::Value;

fn tiny_model(quantized: bool) -> (Arc<ExplainTi>, Vec<String>) {
    let d = explainti_corpus::generate_wiki(&explainti_corpus::WikiConfig {
        num_tables: 16,
        seed: 4242,
        ..Default::default()
    });
    let cfg = ExplainTiConfig::bert_like(2048, 32).with_quantized(quantized);
    let mut m = ExplainTi::new(&d, cfg);
    for t in 0..m.tasks().len() {
        m.refresh_store(t);
    }
    (Arc::new(m), d.collection.type_labels.clone())
}

/// Minimal keep-alive client: frames responses by `Content-Length` so
/// one socket carries the whole request series.
struct Client {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Client {
    fn connect(addr: &std::net::SocketAddr) -> Self {
        let stream = TcpStream::connect(addr).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        Self { stream, buf: Vec::new() }
    }

    fn request(&mut self, method: &str, path: &str, body: &str) -> (u16, String) {
        let msg = format!(
            "{method} {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
            body.len()
        );
        self.stream.write_all(msg.as_bytes()).unwrap();
        self.read_response()
    }

    fn fill(&mut self) {
        let mut scratch = [0u8; 8192];
        let n = self.stream.read(&mut scratch).expect("read");
        assert!(n > 0, "connection closed mid-response");
        self.buf.extend_from_slice(&scratch[..n]);
    }

    fn find(haystack: &[u8], needle: &[u8]) -> Option<usize> {
        haystack.windows(needle.len()).position(|w| w == needle)
    }

    fn read_response(&mut self) -> (u16, String) {
        let head_end = loop {
            if let Some(pos) = Self::find(&self.buf, b"\r\n\r\n") {
                break pos;
            }
            self.fill();
        };
        let head = String::from_utf8_lossy(&self.buf[..head_end]).into_owned();
        self.buf.drain(..head_end + 4);
        let status: u16 = head
            .split_whitespace()
            .nth(1)
            .and_then(|s| s.parse().ok())
            .unwrap_or_else(|| panic!("unparseable head: {head:?}"));
        let len: usize = head
            .lines()
            .filter_map(|l| l.split_once(':'))
            .find(|(k, _)| k.trim().eq_ignore_ascii_case("content-length"))
            .and_then(|(_, v)| v.trim().parse().ok())
            .unwrap_or(0);
        while self.buf.len() < len {
            self.fill();
        }
        let body: Vec<u8> = self.buf.drain(..len).collect();
        (status, String::from_utf8_lossy(&body).into_owned())
    }
}

fn gauge(metrics: &Value, name: &str) -> Option<f64> {
    metrics.get("gauges").and_then(|g| g.get(name)).and_then(Value::as_f64)
}

#[test]
fn config_reports_quantized_knob() {
    let (model, labels) = tiny_model(true);
    let cfg = ServeConfig { workers: 1, quantized: true, ..Default::default() };
    let mut handle = start(model, labels, cfg).expect("start server");
    let mut client = Client::connect(&handle.addr());

    let (status, body) = client.request("GET", "/v1/config", "");
    assert_eq!(status, 200, "body: {body}");
    let config: Value = serde_json::from_str(&body).unwrap();
    assert_eq!(config.get("quantized").and_then(Value::as_bool), Some(true));
    assert_eq!(
        config.get("schema_version").and_then(Value::as_u64),
        Some(explainti_api::SCHEMA_VERSION as u64)
    );

    // And the default stays off.
    handle.shutdown();
    handle.join();
    let (model, labels) = tiny_model(false);
    let mut handle = start(model, labels, ServeConfig::default()).expect("start server");
    let mut client = Client::connect(&handle.addr());
    let (_, body) = client.request("GET", "/v1/config", "");
    let config: Value = serde_json::from_str(&body).unwrap();
    assert_eq!(config.get("quantized").and_then(Value::as_bool), Some(false));
    handle.shutdown();
    handle.join();
}

#[test]
fn quantized_steady_state_serving_does_not_grow_the_arena() {
    let (model, labels) = tiny_model(true);
    // One worker so a single thread (and a single thread-local arena)
    // serves every forward; cache stays default but every body below is
    // unique, so each request runs the quantized encoder for real.
    let cfg = ServeConfig { workers: 1, quantized: true, ..Default::default() };
    let mut handle = start(model, labels, cfg).expect("start server");
    let mut client = Client::connect(&handle.addr());

    let predict = |client: &mut Client, i: usize| {
        let body = format!(
            r#"{{"title":"t{i}","header":"h{i}","cells":["alpha {i}","beta {i}","gamma {i}"]}}"#
        );
        let (status, resp) = client.request("POST", "/v1/interpret", &body);
        assert_eq!(status, 200, "request {i}: {resp}");
    };

    // Warm-up: the first requests grow the arena to its steady size.
    for i in 0..10 {
        predict(&mut client, i);
    }
    let (_, body) = client.request("GET", "/v1/metrics", "");
    let metrics: Value = serde_json::from_str(&body).unwrap();
    let warm = gauge(&metrics, "nn.arena.bytes")
        .unwrap_or_else(|| panic!("nn.arena.bytes gauge missing: {metrics:?}"));
    assert!(warm > 0.0, "arena gauge never published a warm capacity");

    // Steady state: 100 further keep-alive requests, all distinct, must
    // leave the capacity byte-for-byte unchanged (reset + reuse, no
    // growth → zero heap churn on the request path).
    for i in 10..110 {
        predict(&mut client, i);
    }
    let (_, body) = client.request("GET", "/v1/metrics", "");
    let metrics: Value = serde_json::from_str(&body).unwrap();
    let steady = gauge(&metrics, "nn.arena.bytes").expect("gauge after steady state");
    assert_eq!(steady, warm, "arena grew during steady-state serving ({warm} → {steady} bytes)");

    // The dispatch counters prove the quantized kernels actually ran.
    let q_calls = metrics
        .get("counters")
        .and_then(|c| c.get("nn.kernel.dispatch.quantized"))
        .and_then(Value::as_u64)
        .unwrap_or(0);
    assert!(q_calls > 0, "quantized kernel dispatch counter never moved: {metrics:?}");

    handle.shutdown();
    handle.join();
}
