//! Hostile-input robustness for `/v1/interpret`: malformed UTF-8,
//! embedded NULs, pathological column counts, and empty tables must come
//! back as clean 4xx errors — never a panic, a hung worker, or a 500.

// Integration tests may panic freely; the crate's unwrap/expect
// lints target the request path (EA006), not test assertions.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

use explainti_core::{ExplainTi, ExplainTiConfig};
use explainti_serve::{start, ServeConfig};

fn tiny_model() -> (Arc<ExplainTi>, Vec<String>) {
    let d = explainti_corpus::generate_wiki(&explainti_corpus::WikiConfig {
        num_tables: 16,
        seed: 4242,
        ..Default::default()
    });
    let mut m = ExplainTi::new(&d, ExplainTiConfig::bert_like(2048, 32));
    for t in 0..m.tasks().len() {
        m.refresh_store(t);
    }
    (Arc::new(m), d.collection.type_labels.clone())
}

/// One HTTP/1.1 exchange with an arbitrary (possibly non-UTF-8) body.
fn request_bytes(addr: &std::net::SocketAddr, path: &str, body: &[u8]) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let head = format!(
        "POST {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    stream.write_all(head.as_bytes()).unwrap();
    stream.write_all(body).unwrap();
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw).unwrap();
    let raw = String::from_utf8_lossy(&raw).into_owned();
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable response: {raw:?}"));
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

#[test]
fn hostile_inputs_return_400_not_500() {
    let (model, labels) = tiny_model();
    let cfg = ServeConfig { workers: 1, deadline_ms: 30_000, ..Default::default() };
    let mut handle = start(model, labels, cfg).expect("start server");
    let addr = handle.addr();

    // Malformed UTF-8 body.
    let (status, body) = request_bytes(&addr, "/v1/interpret", &[0xff, 0xfe, b'{', 0x80]);
    assert_eq!(status, 400, "invalid UTF-8 must answer 400: {body}");
    assert!(body.contains("UTF-8"), "error should say why: {body}");

    // Truncated / malformed JSON.
    let (status, _) = request_bytes(&addr, "/v1/interpret", br#"{"title": "x", "header""#);
    assert_eq!(status, 400);

    // Empty table.
    let (status, body) = request_bytes(&addr, "/v1/interpret", br#"{"columns": []}"#);
    assert_eq!(status, 400, "empty table must answer 400: {body}");

    // Column with neither header nor cells.
    let (status, _) =
        request_bytes(&addr, "/v1/interpret", br#"{"title":"t","header":"","cells":[]}"#);
    assert_eq!(status, 400);

    // A 10k-column row: answered with a clean 400 (over the per-request
    // column limit), not a queue meltdown or a 500.
    let cols: Vec<String> =
        (0..10_000).map(|i| format!(r#"{{"header":"c{i}","cells":["v"]}}"#)).collect();
    let huge = format!(r#"{{"title":"wide","columns":[{}]}}"#, cols.join(","));
    let (status, body) = request_bytes(&addr, "/v1/interpret", huge.as_bytes());
    assert_eq!(status, 400, "10k columns must answer 400: {body}");
    assert!(body.contains("limit"), "error should mention the limit: {body}");

    // Embedded NUL bytes and control characters in cells: valid JSON,
    // valid UTF-8 — must be interpreted (200) without panicking.
    let nul = "{\"title\":\"t\",\"header\":\"na\\u0000me\",\"cells\":[\"a\\u0000b\",\"\\u0001\"]}";
    let (status, body) = request_bytes(&addr, "/v1/interpret", nul.as_bytes());
    assert_eq!(status, 200, "NUL-laden column should still interpret: {body}");

    // The server survived all of the above: a normal request still works.
    let ok = br#"{"title":"cities","header":"city","cells":["london","paris"]}"#;
    let (status, _) = request_bytes(&addr, "/v1/interpret", ok);
    assert_eq!(status, 200, "server must stay healthy after hostile inputs");

    handle.shutdown();
    handle.join();
}
