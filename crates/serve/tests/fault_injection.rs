//! End-to-end chaos drills against a live server: worker panics within
//! and past the retry budget, injected queue backpressure, slow batches
//! against tight deadlines — the server must stay up through all of it,
//! and `/v1/metrics` must account for every trip and retry.
//!
//! The failpoint registry is process-global, so every test serialises on
//! one mutex and clears the registry before and after its drill.

// Integration tests may panic freely; the crate's unwrap/expect
// lints target the request path (EA006), not test assertions.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex, MutexGuard};

use explainti_core::{ExplainTi, ExplainTiConfig};
use explainti_faults as faults;
use explainti_serve::{start, ServeConfig};
use serde_json::Value;

fn lock() -> MutexGuard<'static, ()> {
    static GUARD: Mutex<()> = Mutex::new(());
    GUARD.lock().unwrap_or_else(|e| e.into_inner())
}

fn tiny_model() -> (Arc<ExplainTi>, Vec<String>) {
    let d = explainti_corpus::generate_wiki(&explainti_corpus::WikiConfig {
        num_tables: 16,
        seed: 4242,
        ..Default::default()
    });
    let mut m = ExplainTi::new(&d, ExplainTiConfig::bert_like(2048, 32));
    for t in 0..m.tasks().len() {
        m.refresh_store(t);
    }
    (Arc::new(m), d.collection.type_labels.clone())
}

fn request(addr: &std::net::SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let msg = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(msg.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable response: {raw:?}"));
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

/// Distinct request bodies so no drill hits another drill's cache entry.
fn column_body(tag: &str) -> String {
    format!(r#"{{"title":"chaos {tag}","header":"city {tag}","cells":["london","paris"]}}"#)
}

#[test]
fn worker_panic_within_retry_budget_still_answers() {
    let _g = lock();
    faults::clear_all();
    let (model, labels) = tiny_model();
    let cfg = ServeConfig { workers: 1, deadline_ms: 30_000, ..Default::default() };
    let mut handle = start(model, labels, cfg).expect("start server");
    let addr = handle.addr();

    // Panic exactly once: the first batch dies, the re-enqueued job runs.
    faults::configure("serve.worker.panic", faults::Policy::Times(1));
    let (status, body) = request(&addr, "POST", "/v1/interpret", &column_body("retry"));
    faults::clear_all();
    assert_eq!(status, 200, "a single worker panic must be retried away: {body}");
    assert!(faults::hit_count("serve.worker.panic") >= 1, "the failpoint never tripped");

    // The retry and the trip both show up in /v1/metrics.
    let (status, metrics) = request(&addr, "GET", "/v1/metrics", "");
    assert_eq!(status, 200);
    let metrics: Value = serde_json::from_str(&metrics).unwrap();
    let retried = metrics
        .get("counters")
        .and_then(|c| c.get("serve.jobs.retried"))
        .and_then(Value::as_u64)
        .unwrap_or(0);
    assert!(retried >= 1, "retry count missing from metrics: {metrics:?}");
    let trips = metrics
        .get("failpoints")
        .and_then(|f| f.get("serve.worker.panic"))
        .and_then(Value::as_u64)
        .unwrap_or(0);
    assert!(trips >= 1, "failpoint hits missing from metrics: {metrics:?}");

    handle.shutdown();
    handle.join();
}

#[test]
fn worker_panic_past_retry_budget_is_a_typed_500() {
    let _g = lock();
    faults::clear_all();
    let (model, labels) = tiny_model();
    let cfg = ServeConfig { workers: 1, deadline_ms: 30_000, ..Default::default() };
    let mut handle = start(model, labels, cfg).expect("start server");
    let addr = handle.addr();

    faults::configure("serve.worker.panic", faults::Policy::Always);
    let (status, body) = request(&addr, "POST", "/v1/interpret", &column_body("exhaust"));
    faults::clear_all();
    assert_eq!(status, 500, "exhausted retries must answer a typed 500: {body}");
    assert!(body.contains("Internal"), "error must carry the typed code: {body}");

    // The server is still alive and serving — both health and real work.
    let (status, health) = request(&addr, "GET", "/v1/healthz", "");
    assert_eq!(status, 200);
    assert!(health.contains("ok"), "healthz after panics: {health}");
    let (status, body) = request(&addr, "POST", "/v1/interpret", &column_body("after"));
    assert_eq!(status, 200, "server must recover once the fault clears: {body}");

    let (_, metrics) = request(&addr, "GET", "/v1/metrics", "");
    let metrics: Value = serde_json::from_str(&metrics).unwrap();
    let exhausted = metrics
        .get("counters")
        .and_then(|c| c.get("serve.jobs.retry_exhausted"))
        .and_then(Value::as_u64)
        .unwrap_or(0);
    assert!(exhausted >= 1, "exhausted-retry count missing: {metrics:?}");

    handle.shutdown();
    handle.join();
}

#[test]
fn injected_queue_full_returns_503_backpressure() {
    let _g = lock();
    faults::clear_all();
    let (model, labels) = tiny_model();
    let cfg = ServeConfig { workers: 1, deadline_ms: 30_000, ..Default::default() };
    let mut handle = start(model, labels, cfg).expect("start server");
    let addr = handle.addr();

    faults::configure("serve.queue.full", faults::Policy::Always);
    let (status, body) = request(&addr, "POST", "/v1/interpret", &column_body("full"));
    faults::clear_all();
    assert_eq!(status, 503, "injected backpressure must answer 503: {body}");
    assert!(body.contains("QueueFull"), "typed code expected: {body}");

    let (status, _) = request(&addr, "POST", "/v1/interpret", &column_body("full"));
    assert_eq!(status, 200, "clearing the fault restores service");

    handle.shutdown();
    handle.join();
}

#[test]
fn slow_batch_against_tight_deadline_times_out_cleanly() {
    let _g = lock();
    faults::clear_all();
    let (model, labels) = tiny_model();
    // Deadline far below the injected 50 ms batch stall.
    let cfg = ServeConfig { workers: 1, deadline_ms: 20, ..Default::default() };
    let mut handle = start(model, labels, cfg).expect("start server");
    let addr = handle.addr();

    faults::configure("serve.batch.slow", faults::Policy::Always);
    let (status, body) = request(&addr, "POST", "/v1/interpret", &column_body("slow"));
    faults::clear_all();
    assert_eq!(status, 504, "a stalled batch must surface as a deadline miss: {body}");
    assert!(body.contains("DeadlineExceeded"), "typed code expected: {body}");

    let (status, health) = request(&addr, "GET", "/v1/healthz", "");
    assert_eq!(status, 200);
    assert!(health.contains("\"degraded\":false"), "healthz carries the flag: {health}");

    handle.shutdown();
    handle.join();
}

#[test]
fn injected_accept_rejection_answers_429_and_recovers() {
    let _g = lock();
    faults::clear_all();
    let (model, labels) = tiny_model();
    let cfg = ServeConfig { workers: 1, ..Default::default() };
    let mut handle = start(model, labels, cfg).expect("start server");
    let addr = handle.addr();

    // One forced admission failure: the very next connection is turned
    // away with the same typed 429 a real over-limit connection gets.
    faults::configure("serve.conn.accept", faults::Policy::Times(1));
    let (status, body) = request(&addr, "GET", "/v1/healthz", "");
    faults::clear_all();
    assert_eq!(status, 429, "injected accept failure must answer 429: {body}");
    assert!(body.contains("TooManyConnections"), "typed code expected: {body}");
    assert!(body.contains("\"retry_after_s\":1"), "typed retry hint expected: {body}");
    assert!(faults::hit_count("serve.conn.accept") >= 1, "the failpoint never tripped");

    // The rejection is accounted for and service resumes immediately.
    let (status, metrics) = request(&addr, "GET", "/v1/metrics", "");
    assert_eq!(status, 200, "server must admit connections once the fault clears");
    let metrics: Value = serde_json::from_str(&metrics).unwrap();
    let rejected = metrics
        .get("counters")
        .and_then(|c| c.get("serve.conns.rejected"))
        .and_then(Value::as_u64)
        .unwrap_or(0);
    assert!(rejected >= 1, "rejected-connection count missing: {metrics:?}");

    handle.shutdown();
    handle.join();
}

#[test]
fn injected_read_stall_answers_408_and_recovers() {
    let _g = lock();
    faults::clear_all();
    let (model, labels) = tiny_model();
    // Generous real deadline: only the failpoint can cause the 408.
    let cfg = ServeConfig { workers: 1, read_timeout_ms: 60_000, ..Default::default() };
    let mut handle = start(model, labels, cfg).expect("start server");
    let addr = handle.addr();

    // A connection with a half-sent request: the next deadline sweep
    // that sees the partial read trips the failpoint and forces the
    // slow-loris path without waiting out the real timeout.
    faults::configure("serve.conn.stall", faults::Policy::Times(1));
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(b"POST /v1/interpret HTTP/1.1\r\nContent-Length: 50\r\n\r\npartial").unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    faults::clear_all();
    let status: u16 = raw.split_whitespace().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0);
    assert_eq!(status, 408, "injected stall must answer 408: {raw}");
    assert!(raw.contains("RequestTimeout"), "typed code expected: {raw}");
    assert!(faults::hit_count("serve.conn.stall") >= 1, "the failpoint never tripped");

    let (status, metrics) = request(&addr, "GET", "/v1/metrics", "");
    assert_eq!(status, 200);
    let metrics: Value = serde_json::from_str(&metrics).unwrap();
    let timeouts = metrics
        .get("counters")
        .and_then(|c| c.get("serve.conns.timeout"))
        .and_then(Value::as_u64)
        .unwrap_or(0);
    assert!(timeouts >= 1, "timeout count missing: {metrics:?}");

    handle.shutdown();
    handle.join();
}

#[test]
fn degraded_model_serves_empty_global_and_reports_it() {
    let _g = lock();
    faults::clear_all();
    let (model, labels) = tiny_model();
    model.set_degraded(true);
    let mut handle = start(Arc::clone(&model), labels, ServeConfig::default()).expect("start");
    let addr = handle.addr();

    let (status, health) = request(&addr, "GET", "/v1/healthz", "");
    assert_eq!(status, 200, "degraded is not down");
    assert!(health.contains("\"degraded\":true"), "healthz must flag degraded: {health}");

    let (_, metrics) = request(&addr, "GET", "/v1/metrics", "");
    let metrics: Value = serde_json::from_str(&metrics).unwrap();
    assert_eq!(metrics.get("degraded").and_then(Value::as_bool), Some(true));

    // Predictions still flow (this model's store is intact, so this
    // checks the serving path, not GE emptiness — core's
    // `ge_store_failure_degrades_instead_of_failing` covers that).
    let (status, _) = request(&addr, "POST", "/v1/interpret", &column_body("degraded"));
    assert_eq!(status, 200);

    handle.shutdown();
    handle.join();
}
