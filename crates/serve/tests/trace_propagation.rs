//! End-to-end wide-event tracing tests: a real server on an ephemeral
//! port, a shared in-memory JSONL sink, and raw-socket clients joining
//! responses to trace records via `X-Trace-Id`.

// Integration tests may panic freely; the crate's unwrap/expect
// lints target the request path (EA006), not test assertions.
#![allow(clippy::unwrap_used, clippy::expect_used)]

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use explainti_core::{ExplainTi, ExplainTiConfig};
use explainti_serve::{start, ServeConfig};
use serde_json::Value;

fn tiny_model() -> (Arc<ExplainTi>, Vec<String>) {
    let d = explainti_corpus::generate_wiki(&explainti_corpus::WikiConfig {
        num_tables: 40,
        seed: 4242,
        ..Default::default()
    });
    let cfg = ExplainTiConfig::bert_like(2048, 32);
    let mut m = ExplainTi::new(&d, cfg);
    // No training needed — tracing structure is what's under test. GE
    // needs the embedding store populated.
    for t in 0..m.tasks().len() {
        m.refresh_store(t);
    }
    (Arc::new(m), d.collection.type_labels.clone())
}

/// A `Write` the obs sink owns whose bytes the test can still read.
#[derive(Clone)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// One HTTP/1.1 exchange, returning status, headers, and body.
fn request(
    addr: &std::net::SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> (u16, Vec<(String, String)>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let msg = format!(
        "{method} {path} HTTP/1.1\r\nHost: test\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(msg.as_bytes()).unwrap();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).unwrap();
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparseable response: {raw:?}"));
    let (head, body) = raw.split_once("\r\n\r\n").unwrap_or((raw.as_str(), ""));
    let headers = head
        .lines()
        .skip(1)
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    (status, headers, body.to_string())
}

fn header<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers.iter().find(|(k, _)| k == name).map(|(_, v)| v.as_str())
}

/// Polls the sink until the wide event for `trace_id` appears (the
/// event is emitted just after the response is written, so a client
/// can observe the response first).
fn wait_for_wide_event(buf: &SharedBuf, trace_id: &str) -> Value {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        {
            let bytes = buf.0.lock().unwrap();
            let text = String::from_utf8_lossy(&bytes);
            for line in text.lines() {
                let Ok(v) = serde_json::from_str::<Value>(line) else { continue };
                if v.get("type").and_then(Value::as_str) == Some("wide")
                    && v.get("trace_id").and_then(Value::as_str) == Some(trace_id)
                {
                    return v;
                }
            }
        }
        assert!(Instant::now() < deadline, "no wide event for trace {trace_id}");
        std::thread::sleep(Duration::from_millis(10));
    }
}

#[test]
fn wide_events_cover_every_stage_and_join_on_trace_ids() {
    explainti_obs::set_level(explainti_obs::Level::Info);
    explainti_obs::set_trace_seed(20_260_808);
    let buf = SharedBuf(Arc::new(Mutex::new(Vec::new())));
    explainti_obs::set_trace_writer(Box::new(buf.clone()));

    let (model, labels) = tiny_model();
    let cfg = ServeConfig {
        workers: 2,
        queue_cap: 32,
        max_batch: 8,
        cache_cap: 32,
        deadline_ms: 60_000,
        threads: 2,
        ..Default::default()
    };
    let mut handle = start(model, labels, cfg).expect("start server");
    let addr = handle.addr();

    // --- Single cold request: every stage exactly once, sum ≤ total ---
    let col = r#"{"title":"1994 world cup","header":"country","cells":["costa rica","morocco"]}"#;
    let (status, headers, _body) = request(&addr, "POST", "/v1/interpret", col);
    assert_eq!(status, 200);
    let tid = header(&headers, "x-trace-id").expect("X-Trace-Id header").to_string();
    assert_eq!(tid.len(), 16, "trace id is 16 hex digits: {tid}");
    assert!(tid.chars().all(|c| c.is_ascii_hexdigit()));

    let event = wait_for_wide_event(&buf, &tid);
    assert_eq!(event.get("endpoint").and_then(Value::as_str), Some("interpret"));
    assert_eq!(event.get("status").and_then(Value::as_u64), Some(200));
    let stages = event.get("stages").and_then(Value::as_object).expect("stages object");
    let mut expected: Vec<&str> = explainti_obs::STAGES.to_vec();
    expected.sort_unstable();
    let got: Vec<&str> = stages.keys().map(String::as_str).collect();
    assert_eq!(got, expected, "stage keys must appear exactly once each");
    let total = event.get("total_ns").and_then(Value::as_u64).unwrap();
    let stage_sum: u64 = stages.values().filter_map(Value::as_u64).sum();
    assert!(
        stage_sum <= total,
        "stages must be disjoint pieces of the request: sum {stage_sum} > total {total}"
    );
    // A cold single-column request exercises the full pipeline.
    for key in ["parse", "encode", "serialize", "predict"] {
        let ns = stages.get(key).and_then(Value::as_u64).unwrap();
        assert!(ns > 0, "stage {key} unexpectedly zero in {event:?}");
    }
    // The explanation views ran (captured across the kernel pool).
    let views: u64 = ["explain_le", "explain_ge", "explain_se"]
        .iter()
        .filter_map(|k| stages.get(*k).and_then(Value::as_u64))
        .sum();
    assert!(views > 0, "LE/GE/SE time missing from {event:?}");
    assert_eq!(event.get("columns").and_then(Value::as_u64), Some(1));
    assert!(event.get("batch_size_max").and_then(Value::as_u64).unwrap_or(0) >= 1);

    // --- Cache hit: joined by id, flagged, no worker stages ---
    let (status, headers, _body) = request(&addr, "POST", "/v1/interpret", col);
    assert_eq!(status, 200);
    let hit_tid = header(&headers, "x-trace-id").unwrap().to_string();
    assert_ne!(hit_tid, tid, "every request gets a fresh trace id");
    let hit_event = wait_for_wide_event(&buf, &hit_tid);
    assert_eq!(hit_event.get("cache_hits").and_then(Value::as_u64), Some(1));
    let hit_stages = hit_event.get("stages").and_then(Value::as_object).unwrap();
    assert_eq!(hit_stages.get("predict").and_then(Value::as_u64), Some(0));
    assert_eq!(hit_stages.get("queue_wait").and_then(Value::as_u64), Some(0));

    // --- Errors echo the id in the body and still emit a wide event ---
    let (status, headers, body) = request(&addr, "POST", "/v1/interpret", "{not json");
    assert_eq!(status, 400);
    let err_tid = header(&headers, "x-trace-id").unwrap().to_string();
    assert!(
        body.contains(&format!("\"trace_id\":\"{err_tid}\"")),
        "error body must echo the trace id: {body}"
    );
    let err_event = wait_for_wide_event(&buf, &err_tid);
    assert_eq!(err_event.get("status").and_then(Value::as_u64), Some(400));

    // --- Concurrent batch: ids unique, one wide event each ---
    let clients: Vec<_> = (0..12)
        .map(|i| {
            std::thread::spawn(move || {
                let body = format!(
                    r#"{{"title":"table {i}","header":"col{i}","cells":["v{i}a","v{i}b"]}}"#
                );
                request(&addr, "POST", "/v1/interpret", &body)
            })
        })
        .collect();
    let mut ids = std::collections::BTreeSet::new();
    for c in clients {
        let (status, headers, body) = c.join().unwrap();
        assert_eq!(status, 200, "body: {body}");
        let id = header(&headers, "x-trace-id").unwrap().to_string();
        assert!(ids.insert(id), "duplicate trace id under concurrency");
    }
    for id in &ids {
        let ev = wait_for_wide_event(&buf, id);
        let st = ev.get("stages").and_then(Value::as_object).unwrap();
        let total = ev.get("total_ns").and_then(Value::as_u64).unwrap();
        let sum: u64 = st.values().filter_map(Value::as_u64).sum();
        assert!(sum <= total, "event {id}: stage sum {sum} > total {total}");
        assert!(st.get("predict").and_then(Value::as_u64).unwrap() > 0, "event {id} no predict");
    }

    handle.shutdown();
    handle.join();
    explainti_obs::close_trace();
    explainti_pool::configure(explainti_pool::Threads::resolve(None).get());
}
