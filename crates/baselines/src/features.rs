//! Hand-crafted column features in the spirit of Sherlock (KDD'19).
//!
//! Sherlock extracts character-level statistics, word statistics, and
//! aggregated embeddings per column; this module reproduces the same
//! families at reduced dimensionality: character/shape statistics, hashed
//! bag-of-words over cell tokens, and hashed header tokens. Sato appends
//! table-level topic features, reproduced here as a hashed bag-of-words
//! over the entire table's text.

use explainti_tokenizer::normalize;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashSet;
use std::hash::{Hash, Hasher};

/// Dimensionality of the character/shape statistics block.
pub const STAT_DIM: usize = 8;
/// Dimensionality of the hashed cell bag-of-words block.
pub const CELL_HASH_DIM: usize = 20;
/// Dimensionality of the hashed header block.
pub const HEADER_HASH_DIM: usize = 8;
/// Total per-column feature dimensionality.
pub const COLUMN_DIM: usize = STAT_DIM + CELL_HASH_DIM + HEADER_HASH_DIM;
/// Dimensionality of Sato's table-topic block.
pub const TOPIC_DIM: usize = 16;

fn bucket(word: &str, dim: usize) -> usize {
    let mut h = DefaultHasher::new();
    word.hash(&mut h);
    (h.finish() as usize) % dim
}

/// Normalised hashed bag-of-words.
fn hashed_bow(texts: &[&str], dim: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; dim];
    let mut total = 0.0f32;
    for text in texts {
        for w in normalize(text) {
            out[bucket(&w, dim)] += 1.0;
            total += 1.0;
        }
    }
    if total > 0.0 {
        for v in &mut out {
            *v /= total;
        }
    }
    out
}

/// Character/shape statistics over the cell values.
fn shape_stats(cells: &[&str]) -> Vec<f32> {
    if cells.is_empty() {
        return vec![0.0; STAT_DIM];
    }
    let n = cells.len() as f32;
    let lens: Vec<f32> = cells.iter().map(|c| c.chars().count() as f32).collect();
    let mean_len = lens.iter().sum::<f32>() / n;
    let var_len = lens.iter().map(|l| (l - mean_len) * (l - mean_len)).sum::<f32>() / n;
    let mut digit = 0.0f32;
    let mut alpha = 0.0f32;
    let mut space = 0.0f32;
    let mut chars = 0.0f32;
    for c in cells {
        for ch in c.chars() {
            chars += 1.0;
            if ch.is_ascii_digit() {
                digit += 1.0;
            } else if ch.is_alphabetic() {
                alpha += 1.0;
            } else if ch == ' ' {
                space += 1.0;
            }
        }
    }
    let chars = chars.max(1.0);
    let distinct: HashSet<&&str> = cells.iter().collect();
    let words_per_cell = cells.iter().map(|c| normalize(c).len() as f32).sum::<f32>() / n;
    vec![
        mean_len / 32.0,
        var_len.sqrt() / 16.0,
        digit / chars,
        alpha / chars,
        space / chars,
        distinct.len() as f32 / n,
        words_per_cell / 8.0,
        (n / 32.0).min(1.0),
    ]
}

/// Sherlock's per-column feature vector (`COLUMN_DIM` values in `[0, 1]`-ish
/// ranges).
pub fn column_features(header: &str, cells: &[&str]) -> Vec<f32> {
    let mut out = Vec::with_capacity(COLUMN_DIM);
    out.extend(shape_stats(cells));
    out.extend(hashed_bow(cells, CELL_HASH_DIM));
    out.extend(hashed_bow(&[header], HEADER_HASH_DIM));
    out
}

/// Sato's table-topic features: hashed bag-of-words over the title plus
/// every cell of every column in the table.
pub fn topic_features(title: &str, all_cells: &[&str]) -> Vec<f32> {
    let mut texts = vec![title];
    texts.extend_from_slice(all_cells);
    hashed_bow(&texts, TOPIC_DIM)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_features_have_fixed_dim() {
        let f = column_features("player", &["les jepsen", "bo kimble"]);
        assert_eq!(f.len(), COLUMN_DIM);
        assert!(f.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn empty_column_is_safe() {
        let f = column_features("", &[]);
        assert_eq!(f.len(), COLUMN_DIM);
        assert!(f.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn numeric_columns_have_high_digit_ratio() {
        let nums = column_features("year", &["1990", "1991", "2004"]);
        let text = column_features("name", &["maria delgado", "henrik olsen"]);
        // digit ratio is stat index 2.
        assert!(nums[2] > 0.9);
        assert!(text[2] < 0.1);
    }

    #[test]
    fn same_content_same_features() {
        let a = column_features("h", &["x", "y"]);
        let b = column_features("h", &["x", "y"]);
        assert_eq!(a, b);
    }

    #[test]
    fn different_headers_differ_in_header_block() {
        // Hash collisions are possible at the reduced dimensionality, so
        // require only that *some* header pair separates.
        let a = column_features("country", &["kenya"]);
        let mut separated = false;
        for other in ["player", "team", "album", "director", "currency"] {
            let b = column_features(other, &["kenya"]);
            assert_eq!(a[..STAT_DIM + CELL_HASH_DIM], b[..STAT_DIM + CELL_HASH_DIM]);
            if a[STAT_DIM + CELL_HASH_DIM..] != b[STAT_DIM + CELL_HASH_DIM..] {
                separated = true;
            }
        }
        assert!(separated, "no header pair separated in the hashed block");
    }

    #[test]
    fn topic_features_are_a_distribution() {
        let t = topic_features("1990 nba draft", &["les jepsen", "warriors"]);
        assert_eq!(t.len(), TOPIC_DIM);
        let sum: f32 = t.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
    }
}
