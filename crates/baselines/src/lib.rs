//! # explainti-baselines
//!
//! Every baseline of the paper's evaluation, re-implemented from scratch
//! with its distinguishing mechanism intact (DESIGN.md §2):
//!
//! * **Sherlock / Sato** — hand-crafted feature MLPs ([`SherlockModel`]);
//! * **TaBERT / TURL / Doduo / TCN** — transformer classifiers differing
//!   in serialised context ([`SeqClassifier`] + [`ContextStrategy`]);
//! * **SelfExplain** — segment-concept LE + GE, no structural view
//!   ([`build_selfexplain`]);
//! * **Saliency Map / Influence Functions** — post-hoc explainers over a
//!   trained classifier ([`SeqClassifier::saliency`],
//!   [`InfluenceExplainer`]).

#![warn(missing_docs)]

pub mod features;
pub mod posthoc;
pub mod selfexplain;
pub mod seqmodels;
pub mod sherlock;

pub use posthoc::{InfluenceExplainer, SalientToken};
pub use selfexplain::{build_selfexplain, selfexplain_config};
pub use seqmodels::{ContextStrategy, SeqClassifier, ValueIndex};
pub use sherlock::{FeatureModel, SherlockModel};
