//! Post-hoc explanation baselines: Saliency Map and Influence Functions.
//!
//! Both operate on an already-trained [`SeqClassifier`]. They do not alter
//! model accuracy (which is why Table III omits them), but their extracted
//! explanations enter the sufficiency evaluation of Table IV.
//!
//! * **Saliency Map** (Simonyan et al.): `|∇x ⊙ x|` per input position,
//!   differentiating the predicted-class logit against the input
//!   embedding (token + position sum).
//! * **Influence Functions** (Han et al.): the practical gradient-product
//!   approximation restricted to the classification head — the influence
//!   of training sample `z` on test sample `x` is `∇_W L(z) · ∇_W L(x)`,
//!   where `∇_W L = clsᵀ(p − y)` in closed form.

use crate::seqmodels::SeqClassifier;
use explainti_core::TaskKind;
use explainti_corpus::Split;
use explainti_nn::{softmax, Graph, Tensor};

/// A scored token position from a saliency map.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SalientToken {
    /// Position in the encoded sequence.
    pub position: usize,
    /// Saliency score (|grad ⊙ input| summed over channels).
    pub score: f32,
}

impl SeqClassifier {
    /// Gradient×input saliency for one sample, sorted descending.
    pub fn saliency(&mut self, kind: TaskKind, sample_idx: usize) -> Vec<SalientToken> {
        let (enc, len) = {
            let (_, _, _, samples, _) = self.task(kind);
            (samples[sample_idx].0.clone(), samples[sample_idx].0.len)
        };
        let head = {
            let (_, _, head, _, _) = self.task(kind);
            head.clone()
        };
        let (encoder, store, rng) = self.parts_mut();
        let mut g = Graph::new();
        let (emb, input) = encoder.forward_with_input(&mut g, store, &enc, false, rng);
        let cls = encoder.cls(&mut g, emb);
        let logits = head.forward(&mut g, store, cls);
        let predicted = g.value(logits).argmax_row(0);
        // Select the predicted-class logit as the scalar to differentiate.
        let c = g.value(logits).cols();
        let mut sel = Tensor::zeros(c, 1);
        sel.set(predicted, 0, 1.0);
        let sel_n = g.input(sel);
        let scalar = g.matmul(logits, sel_n);
        g.backward(scalar);
        let grad = g.grad(input);
        let x = g.value(input);
        let mut scores: Vec<SalientToken> = (0..len)
            .map(|pos| {
                let gr = grad.row_slice(pos);
                let xr = x.row_slice(pos);
                let score: f32 = gr.iter().zip(xr).map(|(&a, &b)| (a * b).abs()).sum();
                SalientToken { position: pos, score }
            })
            .collect();
        scores.sort_by(|a, b| b.score.partial_cmp(&a.score).unwrap_or(std::cmp::Ordering::Equal));
        scores
    }

    /// Closed-form head-gradient feature `clsᵀ(p − e_y)` flattened to
    /// `d·c` values. `label` defaults to the prediction when `None`.
    pub fn head_grad_feature(
        &mut self,
        kind: TaskKind,
        sample_idx: usize,
        label: Option<usize>,
    ) -> Vec<f32> {
        let enc = {
            let (_, _, _, samples, _) = self.task(kind);
            samples[sample_idx].0.clone()
        };
        let head = {
            let (_, _, head, _, _) = self.task(kind);
            head.clone()
        };
        let (encoder, store, rng) = self.parts_mut();
        let mut g = Graph::new();
        let emb = encoder.forward(&mut g, store, &enc, false, rng);
        let cls = encoder.cls(&mut g, emb);
        let logits = head.forward(&mut g, store, cls);
        let p = softmax(g.value(logits).as_slice());
        let y = label.unwrap_or_else(|| g.value(logits).argmax_row(0));
        let cls_v = g.value(cls).as_slice().to_vec();
        let mut out = Vec::with_capacity(cls_v.len() * p.len());
        for &cv in &cls_v {
            for (j, &pj) in p.iter().enumerate() {
                let err = pj - if j == y { 1.0 } else { 0.0 };
                out.push(cv * err);
            }
        }
        out
    }
}

/// Precomputed training-set gradient features for influence retrieval.
pub struct InfluenceExplainer {
    kind: TaskKind,
    train_features: Vec<(usize, Vec<f32>)>,
}

impl InfluenceExplainer {
    /// Computes head-gradient features of every training sample (with its
    /// gold label, as in the influence-function formulation).
    pub fn new(model: &mut SeqClassifier, kind: TaskKind) -> Self {
        let train: Vec<(usize, usize)> = {
            let (_, _, _, samples, _) = model.task(kind);
            samples
                .iter()
                .enumerate()
                .filter(|(_, (_, _, split))| *split == Split::Train)
                .map(|(i, (_, label, _))| (i, *label))
                .collect()
        };
        let train_features = train
            .into_iter()
            .map(|(i, label)| (i, model.head_grad_feature(kind, i, Some(label))))
            .collect();
        Self { kind, train_features }
    }

    /// Top-`k` most influential training samples for a test sample
    /// (largest |gradient dot product|), most influential first.
    pub fn top_k(&self, model: &mut SeqClassifier, test_idx: usize, k: usize) -> Vec<(usize, f32)> {
        let test_feat = model.head_grad_feature(self.kind, test_idx, None);
        let mut scored: Vec<(usize, f32)> = self
            .train_features
            .iter()
            .map(|(i, f)| {
                let dot: f32 = f.iter().zip(&test_feat).map(|(&a, &b)| a * b).sum();
                (*i, dot.abs())
            })
            .collect();
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        scored.truncate(k);
        scored
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::seqmodels::ContextStrategy;
    use explainti_core::build_tokenizer;
    use explainti_corpus::{generate_wiki, WikiConfig};
    use explainti_encoder::EncoderConfig;

    fn trained_model() -> SeqClassifier {
        let d = generate_wiki(&WikiConfig { num_tables: 40, seed: 71, ..Default::default() });
        let tok = build_tokenizer(&d, 2048);
        let cfg = EncoderConfig::bert_like(tok.vocab_size(), 24);
        let mut m = SeqClassifier::new(&d, &tok, cfg, ContextStrategy::PerColumn, 1);
        m.epochs = 1;
        m.train();
        m
    }

    #[test]
    fn saliency_scores_cover_real_positions_only() {
        let mut m = trained_model();
        let sal = m.saliency(TaskKind::Type, 0);
        assert!(!sal.is_empty());
        assert!(sal.iter().all(|t| t.score >= 0.0));
        for pair in sal.windows(2) {
            assert!(pair[0].score >= pair[1].score);
        }
    }

    #[test]
    fn influence_returns_training_samples() {
        let mut m = trained_model();
        let inf = InfluenceExplainer::new(&mut m, TaskKind::Type);
        let test_idx = {
            let (_, _, _, samples, _) = m.task(TaskKind::Type);
            samples.iter().position(|(_, _, s)| *s == Split::Test).expect("a test sample exists")
        };
        let top = inf.top_k(&mut m, test_idx, 3);
        assert_eq!(top.len(), 3);
        for pair in top.windows(2) {
            assert!(pair[0].1 >= pair[1].1);
        }
    }

    #[test]
    fn head_grad_feature_has_d_times_c_entries() {
        let mut m = trained_model();
        let f = m.head_grad_feature(TaskKind::Type, 0, Some(0));
        let (_, _, _, _, c) = m.task(TaskKind::Type);
        assert_eq!(f.len(), 32 * c);
    }
}
