//! Sherlock (KDD'19) and Sato (VLDB'20) baselines.
//!
//! Sherlock is a feed-forward network over hand-crafted per-column
//! features; Sato extends it with table-level topic features. Relations
//! are predicted from the concatenated subject/object features, as in the
//! paper's baseline adaptation ("we concatenate the embeddings of subject
//! and object pair of columns").

use crate::features::{column_features, topic_features, COLUMN_DIM, TOPIC_DIM};
use explainti_core::TaskKind;
use explainti_corpus::{Dataset, Split};
use explainti_metrics::{f1_scores, F1Scores};
use explainti_nn::{AdamW, Graph, Linear, LinearSchedule, ParamStore, Tensor};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::time::{Duration, Instant};

/// Which feature set to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FeatureModel {
    /// Column features only.
    Sherlock,
    /// Column features + table topic features.
    Sato,
}

struct FeatureTask {
    kind: TaskKind,
    features: Vec<Vec<f32>>,
    labels: Vec<usize>,
    splits: Vec<Split>,
    num_classes: usize,
    head: Linear,
    hidden: Linear,
}

/// A trained Sherlock/Sato model over one dataset (both tasks when the
/// dataset annotates relations).
pub struct SherlockModel {
    model: FeatureModel,
    store: ParamStore,
    tasks: Vec<FeatureTask>,
    rng: SmallRng,
    epochs: usize,
    batch_size: usize,
}

fn table_cells(dataset: &Dataset, table: usize) -> Vec<&str> {
    dataset.collection.tables[table]
        .columns
        .iter()
        .flat_map(|c| c.cells.iter().map(String::as_str))
        .collect()
}

impl SherlockModel {
    /// Extracts features and initialises the MLPs.
    pub fn new(dataset: &Dataset, model: FeatureModel, seed: u64) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let topic_dim = if model == FeatureModel::Sato { TOPIC_DIM } else { 0 };

        let mut tasks = Vec::new();
        {
            // Column-type task.
            let mut features = Vec::new();
            let mut labels = Vec::new();
            let mut splits = Vec::new();
            for (cref, label) in dataset.collection.annotated_columns() {
                let table = &dataset.collection.tables[cref.table];
                let col = &table.columns[cref.col];
                let mut f = column_features(&col.header, &col.cell_refs());
                if model == FeatureModel::Sato {
                    f.extend(topic_features(&table.title, &table_cells(dataset, cref.table)));
                }
                features.push(f);
                labels.push(label);
                splits.push(dataset.table_split[cref.table]);
            }
            let num_classes = dataset.collection.type_labels.len();
            let in_dim = COLUMN_DIM + topic_dim;
            tasks.push(FeatureTask {
                kind: TaskKind::Type,
                hidden: Linear::new(&mut store, "sherlock.type.h", in_dim, 64, &mut rng),
                head: Linear::new(&mut store, "sherlock.type.out", 64, num_classes, &mut rng),
                features,
                labels,
                splits,
                num_classes,
            });
        }
        if !dataset.collection.annotated_pairs().is_empty() {
            let mut features = Vec::new();
            let mut labels = Vec::new();
            let mut splits = Vec::new();
            for (pref, label) in dataset.collection.annotated_pairs() {
                let table = &dataset.collection.tables[pref.table];
                let (s, o) = (&table.columns[pref.subject], &table.columns[pref.object]);
                let mut f = column_features(&s.header, &s.cell_refs());
                f.extend(column_features(&o.header, &o.cell_refs()));
                if model == FeatureModel::Sato {
                    f.extend(topic_features(&table.title, &table_cells(dataset, pref.table)));
                }
                features.push(f);
                labels.push(label);
                splits.push(dataset.table_split[pref.table]);
            }
            let num_classes = dataset.collection.relation_labels.len();
            let in_dim = 2 * COLUMN_DIM + topic_dim;
            tasks.push(FeatureTask {
                kind: TaskKind::Relation,
                hidden: Linear::new(&mut store, "sherlock.rel.h", in_dim, 64, &mut rng),
                head: Linear::new(&mut store, "sherlock.rel.out", 64, num_classes, &mut rng),
                features,
                labels,
                splits,
                num_classes,
            });
        }

        Self { model, store, tasks, rng, epochs: 30, batch_size: 32 }
    }

    /// The display name for report tables.
    pub fn name(&self) -> &'static str {
        match self.model {
            FeatureModel::Sherlock => "Sherlock",
            FeatureModel::Sato => "Sato",
        }
    }

    /// Whether the model has the given task.
    pub fn supports(&self, kind: TaskKind) -> bool {
        self.tasks.iter().any(|t| t.kind == kind)
    }

    fn batch_tensor(task: &FeatureTask, idxs: &[usize]) -> (Tensor, Vec<usize>) {
        let dim = task.features[0].len();
        let mut m = Tensor::zeros(idxs.len(), dim);
        let mut labels = Vec::with_capacity(idxs.len());
        for (r, &i) in idxs.iter().enumerate() {
            m.row_slice_mut(r).copy_from_slice(&task.features[i]);
            labels.push(task.labels[i]);
        }
        (m, labels)
    }

    /// Trains both task MLPs; returns wall-clock time.
    pub fn train(&mut self) -> Duration {
        let t0 = Instant::now();
        let total_steps: usize =
            self.tasks.iter().map(|t| (t.labels.len() / self.batch_size + 1) * self.epochs).sum();
        let mut opt = AdamW::new(LinearSchedule::new(3e-3, 5, total_steps));
        for _epoch in 0..self.epochs {
            for ti in 0..self.tasks.len() {
                let mut order: Vec<usize> = (0..self.tasks[ti].labels.len())
                    .filter(|&i| self.tasks[ti].splits[i] == Split::Train)
                    .collect();
                order.shuffle(&mut self.rng);
                for chunk in order.chunks(self.batch_size) {
                    let (batch, labels) = Self::batch_tensor(&self.tasks[ti], chunk);
                    let mut g = Graph::new();
                    let x = g.input(batch);
                    let h = self.tasks[ti].hidden.forward(&mut g, &self.store, x);
                    let a = g.relu(h);
                    let logits = self.tasks[ti].head.forward(&mut g, &self.store, a);
                    let loss = g.cross_entropy(logits, &labels);
                    g.backward(loss);
                    g.flush_grads(&mut self.store);
                    opt.step(&mut self.store);
                }
            }
        }
        t0.elapsed()
    }

    /// Evaluates one task on a split.
    pub fn evaluate(&mut self, kind: TaskKind, split: Split) -> F1Scores {
        let ti = self.tasks.iter().position(|t| t.kind == kind).expect("task not registered");
        let task = &self.tasks[ti];
        let idxs: Vec<usize> =
            (0..task.labels.len()).filter(|&i| task.splits[i] == split).collect();
        let (batch, labels) = Self::batch_tensor(task, &idxs);
        let mut g = Graph::new();
        let x = g.input(batch);
        let h = task.hidden.forward(&mut g, &self.store, x);
        let a = g.relu(h);
        let logits = task.head.forward(&mut g, &self.store, a);
        let preds: Vec<usize> = (0..idxs.len()).map(|r| g.value(logits).argmax_row(r)).collect();
        f1_scores(&preds, &labels, task.num_classes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use explainti_corpus::{generate_wiki, WikiConfig};

    #[test]
    fn sherlock_learns_the_type_task() {
        let d = generate_wiki(&WikiConfig { num_tables: 120, seed: 41, ..Default::default() });
        let mut m = SherlockModel::new(&d, FeatureModel::Sherlock, 1);
        m.train();
        let f1 = m.evaluate(TaskKind::Type, Split::Test);
        assert!(f1.micro > 0.3, "Sherlock test micro-F1 {}", f1.micro);
    }

    #[test]
    fn sato_has_topic_features_and_supports_relations() {
        let d = generate_wiki(&WikiConfig { num_tables: 60, seed: 42, ..Default::default() });
        let m = SherlockModel::new(&d, FeatureModel::Sato, 1);
        assert_eq!(m.name(), "Sato");
        assert!(m.supports(TaskKind::Relation));
        assert_eq!(m.tasks[0].features[0].len(), COLUMN_DIM + TOPIC_DIM);
        assert_eq!(m.tasks[1].features[0].len(), 2 * COLUMN_DIM + TOPIC_DIM);
    }
}
