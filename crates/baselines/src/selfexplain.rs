//! SelfExplain (EMNLP'21) baseline, extended to table interpretation.
//!
//! SelfExplain adds a local (constituent-span relevance) and a global
//! (influential training samples) interpretation layer to a text
//! classifier. The paper extends it to TI by serialising tables; because
//! tables have no syntax, constituent parsing degenerates into coarse
//! field segments — exactly why ExplainTI's sliding windows beat it in
//! Tables III/IV. We reuse the ExplainTI machinery with SE disabled and
//! LE switched to segment mode, which is the honest translation of
//! SelfExplain's architecture onto this codebase.

use explainti_core::{ExplainTi, ExplainTiConfig, LeMode};
use explainti_corpus::Dataset;

/// Builds the SelfExplain baseline configuration from a base config.
pub fn selfexplain_config(mut cfg: ExplainTiConfig) -> ExplainTiConfig {
    cfg.use_se = false;
    cfg.use_le = true;
    cfg.use_ge = true;
    cfg.le_mode = LeMode::Segments;
    // SelfExplain's published defaults weight both interpretation losses
    // heavily (its lambda = 0.5), unlike ExplainTI's tuned alpha/beta.
    cfg.alpha = 0.5;
    cfg.beta = 0.5;
    cfg
}

/// Constructs the SelfExplain baseline model over a dataset.
pub fn build_selfexplain(dataset: &Dataset, base: ExplainTiConfig) -> ExplainTi {
    ExplainTi::new(dataset, selfexplain_config(base))
}

#[cfg(test)]
mod tests {
    use super::*;
    use explainti_core::TaskKind;
    use explainti_corpus::{generate_wiki, WikiConfig};

    #[test]
    fn selfexplain_uses_segments_and_no_se() {
        let cfg = selfexplain_config(ExplainTiConfig::bert_like(2048, 32));
        assert!(!cfg.use_se);
        assert_eq!(cfg.le_mode, LeMode::Segments);
    }

    #[test]
    fn segment_spans_differ_from_sliding_windows() {
        let d = generate_wiki(&WikiConfig { num_tables: 40, seed: 61, ..Default::default() });
        let mut se_model = build_selfexplain(&d, ExplainTiConfig::bert_like(2048, 32));
        se_model.refresh_store(0);
        let p = se_model.predict(TaskKind::Type, 0);
        assert!(!p.explanation.local.is_empty());
        // Segment lengths vary; sliding windows would all equal cfg.window.
        let lens: std::collections::HashSet<usize> =
            p.explanation.local.iter().map(|s| s.window).collect();
        assert!(!lens.is_empty());
        // Global view present, structural view absent.
        assert!(!p.explanation.global.is_empty());
        assert!(p.explanation.structural.is_empty());
    }
}
