//! Transformer-based tabular representation-learning baselines.
//!
//! TaBERT, TURL, Doduo and TCN all fine-tune a transformer encoder over a
//! serialisation of the table; what distinguishes them — and what drives
//! their ordering in Table III — is *which context* enters the sequence:
//!
//! | Model  | Context mechanism preserved here                          |
//! |--------|-----------------------------------------------------------|
//! | Doduo  | per-column serialisation, multi-task over type+relation   |
//! | TaBERT | + content snapshot (first row of every other column)      |
//! | TURL   | + row-structure context (cells sharing the first rows)    |
//! | TCN    | + inter-table context from columns sharing cell values    |
//!
//! TCN's value-sharing lookup is exactly why it degrades on the
//! database-table corpus: heterogeneous DB columns share formatting
//! values across unrelated types, so its inter-table neighbours are
//! noisy — the behaviour Table III reports.

use explainti_core::TaskKind;
use explainti_corpus::{Dataset, Split};
use explainti_encoder::{EncoderConfig, TransformerEncoder};
use explainti_metrics::{f1_scores, F1Scores};
use explainti_nn::{AdamW, Graph, Linear, LinearSchedule, ParamStore};
use explainti_tokenizer::{encode_column, encode_column_pair, Encoded, Tokenizer};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::collections::HashMap;

/// Borrowed view of one task: encoder, parameters, head, samples, classes.
pub(crate) type TaskView<'a> =
    (&'a TransformerEncoder, &'a ParamStore, &'a Linear, &'a [(Encoded, usize, Split)], usize);
use std::time::{Duration, Instant};

/// Serialisation strategy distinguishing the baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ContextStrategy {
    /// Per-column only (Doduo-like).
    PerColumn,
    /// Content snapshot: first-row cells of sibling columns (TaBERT-like).
    ContentSnapshot,
    /// Row structure: first rows across the table (TURL-like).
    RowStructure,
    /// Inter-table value-sharing neighbours (TCN-like).
    ValueSharing,
}

impl ContextStrategy {
    /// Display name for report tables.
    pub fn model_name(&self) -> &'static str {
        match self {
            ContextStrategy::PerColumn => "Doduo",
            ContextStrategy::ContentSnapshot => "TaBERT",
            ContextStrategy::RowStructure => "TURL",
            ContextStrategy::ValueSharing => "TCN",
        }
    }
}

/// Index from cell value to the columns containing it (TCN's inter-table
/// connection).
pub struct ValueIndex {
    by_value: HashMap<String, Vec<(usize, usize)>>,
}

impl ValueIndex {
    /// Builds the index over *training* tables only.
    pub fn build(dataset: &Dataset) -> Self {
        let mut by_value: HashMap<String, Vec<(usize, usize)>> = HashMap::new();
        for (ti, table) in dataset.collection.tables.iter().enumerate() {
            if dataset.table_split[ti] != Split::Train {
                continue;
            }
            for (ci, col) in table.columns.iter().enumerate() {
                for cell in &col.cells {
                    let entry = by_value.entry(cell.clone()).or_default();
                    if entry.last() != Some(&(ti, ci)) {
                        entry.push((ti, ci));
                    }
                }
            }
        }
        Self { by_value }
    }

    /// Up to `limit` columns from *other* tables sharing any of `cells`.
    pub fn sharing_columns(
        &self,
        table: usize,
        cells: &[&str],
        limit: usize,
    ) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for cell in cells {
            if let Some(cols) = self.by_value.get(*cell) {
                for &(ti, ci) in cols {
                    if ti != table && !out.contains(&(ti, ci)) {
                        out.push((ti, ci));
                        if out.len() >= limit {
                            return out;
                        }
                    }
                }
            }
        }
        out
    }
}

/// Builds the context suffix a strategy appends to the target column cells.
fn context_cells<'a>(
    strategy: ContextStrategy,
    dataset: &'a Dataset,
    table: usize,
    target_col: usize,
    value_index: Option<&ValueIndex>,
) -> Vec<&'a str> {
    let t = &dataset.collection.tables[table];
    match strategy {
        ContextStrategy::PerColumn => Vec::new(),
        ContextStrategy::ContentSnapshot => t
            .columns
            .iter()
            .enumerate()
            .filter(|(ci, _)| *ci != target_col)
            .filter_map(|(_, c)| c.cells.first().map(String::as_str))
            .collect(),
        ContextStrategy::RowStructure => {
            let mut out = Vec::new();
            for row in 0..2 {
                for (ci, c) in t.columns.iter().enumerate() {
                    if ci == target_col {
                        continue;
                    }
                    if let Some(cell) = c.cells.get(row) {
                        out.push(cell.as_str());
                    }
                }
            }
            out
        }
        ContextStrategy::ValueSharing => {
            let index = value_index.expect("TCN needs a value index");
            let target = &t.columns[target_col];
            let cells: Vec<&str> = target.cells.iter().take(6).map(String::as_str).collect();
            let mut out = Vec::new();
            for (oti, oci) in index.sharing_columns(table, &cells, 2) {
                let oc = &dataset.collection.tables[oti].columns[oci];
                out.push(oc.header.as_str());
                if let Some(cell) = oc.cells.first() {
                    out.push(cell.as_str());
                }
            }
            out
        }
    }
}

struct SeqTask {
    kind: TaskKind,
    samples: Vec<(Encoded, usize, Split)>,
    num_classes: usize,
    head: Linear,
}

/// A transformer sequence classifier parameterised by a context strategy.
pub struct SeqClassifier {
    strategy: ContextStrategy,
    store: ParamStore,
    encoder: TransformerEncoder,
    tasks: Vec<SeqTask>,
    tokenizer: Tokenizer,
    rng: SmallRng,
    /// Fine-tuning epochs.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Peak learning rate.
    pub lr: f32,
}

impl SeqClassifier {
    /// Serialises `dataset` under `strategy` and initialises the model.
    pub fn new(
        dataset: &Dataset,
        tokenizer: &Tokenizer,
        encoder_cfg: EncoderConfig,
        strategy: ContextStrategy,
        seed: u64,
    ) -> Self {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut store = ParamStore::new();
        let mut cfg = encoder_cfg;
        cfg.vocab_size = tokenizer.vocab_size();
        let max_seq = cfg.max_seq;
        let encoder = TransformerEncoder::new(&mut store, cfg, &mut rng);
        let d = encoder.d_model();
        let value_index = if strategy == ContextStrategy::ValueSharing {
            Some(ValueIndex::build(dataset))
        } else {
            None
        };

        let mut tasks = Vec::new();
        {
            let mut samples = Vec::new();
            for (cref, label) in dataset.collection.annotated_columns() {
                let table = &dataset.collection.tables[cref.table];
                let col = &table.columns[cref.col];
                let mut own = col.cell_refs();
                own.truncate(6);
                let ctx =
                    context_cells(strategy, dataset, cref.table, cref.col, value_index.as_ref());
                // TCN treats inter-table context as first-class input (it
                // aggregates neighbour-column representations before the
                // target's own cells); the other strategies append their
                // context after the target content.
                let cells: Vec<&str> = if strategy == ContextStrategy::ValueSharing {
                    ctx.into_iter().chain(own).collect()
                } else {
                    own.into_iter().chain(ctx).collect()
                };
                let enc = encode_column(tokenizer, &table.title, &col.header, &cells, max_seq);
                samples.push((enc, label, dataset.table_split[cref.table]));
            }
            let num_classes = dataset.collection.type_labels.len();
            tasks.push(SeqTask {
                kind: TaskKind::Type,
                head: Linear::new(&mut store, "seq.type.head", d, num_classes, &mut rng),
                samples,
                num_classes,
            });
        }
        if !dataset.collection.annotated_pairs().is_empty() {
            let mut samples = Vec::new();
            for (pref, label) in dataset.collection.annotated_pairs() {
                let table = &dataset.collection.tables[pref.table];
                let (s, o) = (&table.columns[pref.subject], &table.columns[pref.object]);
                let mut cs = s.cell_refs();
                cs.truncate(4);
                cs.extend(context_cells(
                    strategy,
                    dataset,
                    pref.table,
                    pref.subject,
                    value_index.as_ref(),
                ));
                let co = o.cell_refs();
                let enc = encode_column_pair(
                    tokenizer,
                    &table.title,
                    &s.header,
                    &cs,
                    &o.header,
                    &co,
                    max_seq,
                );
                samples.push((enc, label, dataset.table_split[pref.table]));
            }
            let num_classes = dataset.collection.relation_labels.len();
            tasks.push(SeqTask {
                kind: TaskKind::Relation,
                head: Linear::new(&mut store, "seq.rel.head", d, num_classes, &mut rng),
                samples,
                num_classes,
            });
        }

        Self {
            strategy,
            store,
            encoder,
            tasks,
            tokenizer: tokenizer.clone(),
            rng,
            epochs: 4,
            batch_size: 16,
            lr: 2e-3,
        }
    }

    /// The tokenizer the model was serialised with (used to render
    /// post-hoc explanations back to text).
    pub fn tokenizer(&self) -> &Tokenizer {
        &self.tokenizer
    }

    /// Display name for report tables.
    pub fn name(&self) -> &'static str {
        self.strategy.model_name()
    }

    /// Whether the model has the given task.
    pub fn supports(&self, kind: TaskKind) -> bool {
        self.tasks.iter().any(|t| t.kind == kind)
    }

    /// Imports a pre-trained encoder checkpoint (same tokenizer/config).
    pub fn load_encoder(&mut self, checkpoint: &[f32]) {
        self.encoder.import_weights(&mut self.store, checkpoint);
    }

    /// Fine-tunes the classifier (multi-task when relations exist).
    pub fn train(&mut self) -> Duration {
        let t0 = Instant::now();
        let total_steps: usize =
            self.tasks.iter().map(|t| (t.samples.len() / self.batch_size + 1) * self.epochs).sum();
        let mut opt = AdamW::new(LinearSchedule::new(self.lr, total_steps / 20 + 1, total_steps));
        for _epoch in 0..self.epochs {
            for ti in 0..self.tasks.len() {
                let mut order: Vec<usize> = (0..self.tasks[ti].samples.len())
                    .filter(|&i| self.tasks[ti].samples[i].2 == Split::Train)
                    .collect();
                order.shuffle(&mut self.rng);
                for chunk in order.chunks(self.batch_size) {
                    for &i in chunk {
                        let (enc, label, _) = self.tasks[ti].samples[i].clone();
                        let mut g = Graph::new();
                        let emb =
                            self.encoder.forward(&mut g, &self.store, &enc, true, &mut self.rng);
                        let cls = self.encoder.cls(&mut g, emb);
                        let logits = self.tasks[ti].head.forward(&mut g, &self.store, cls);
                        let loss = g.cross_entropy(logits, &[label]);
                        g.backward(loss);
                        g.flush_grads(&mut self.store);
                    }
                    opt.step(&mut self.store);
                }
            }
        }
        t0.elapsed()
    }

    fn predict_by_task_index(&mut self, ti: usize, sample_idx: usize) -> usize {
        let (enc, _, _) = self.tasks[ti].samples[sample_idx].clone();
        let mut g = Graph::new();
        let emb = self.encoder.forward(&mut g, &self.store, &enc, false, &mut self.rng);
        let cls = self.encoder.cls(&mut g, emb);
        let logits = self.tasks[ti].head.forward(&mut g, &self.store, cls);
        g.value(logits).argmax_row(0)
    }

    /// Predicts the label of one sample.
    pub fn predict(&mut self, kind: TaskKind, sample_idx: usize) -> usize {
        let ti = self.tasks.iter().position(|t| t.kind == kind).expect("task not registered");
        self.predict_by_task_index(ti, sample_idx)
    }

    /// Evaluates one task on a split.
    pub fn evaluate(&mut self, kind: TaskKind, split: Split) -> F1Scores {
        let ti = self.tasks.iter().position(|t| t.kind == kind).expect("task not registered");
        let num_classes = self.tasks[ti].num_classes;
        let idxs: Vec<usize> = (0..self.tasks[ti].samples.len())
            .filter(|&i| self.tasks[ti].samples[i].2 == split)
            .collect();
        let mut preds = Vec::with_capacity(idxs.len());
        let mut labels = Vec::with_capacity(idxs.len());
        for i in idxs {
            labels.push(self.tasks[ti].samples[i].1);
            preds.push(self.predict_by_task_index(ti, i));
        }
        f1_scores(&preds, &labels, num_classes)
    }

    pub(crate) fn parts_mut(&mut self) -> (&TransformerEncoder, &mut ParamStore, &mut SmallRng) {
        (&self.encoder, &mut self.store, &mut self.rng)
    }

    /// The serialised samples of a task (encoded sequence, label, split).
    pub fn samples(&self, kind: TaskKind) -> &[(Encoded, usize, Split)] {
        let ti = self.tasks.iter().position(|t| t.kind == kind).expect("task not registered");
        &self.tasks[ti].samples
    }

    /// Number of label classes of a task.
    pub fn num_classes(&self, kind: TaskKind) -> usize {
        let ti = self.tasks.iter().position(|t| t.kind == kind).expect("task not registered");
        self.tasks[ti].num_classes
    }

    pub(crate) fn task(&self, kind: TaskKind) -> TaskView<'_> {
        let ti = self.tasks.iter().position(|t| t.kind == kind).expect("task not registered");
        (
            &self.encoder,
            &self.store,
            &self.tasks[ti].head,
            &self.tasks[ti].samples,
            self.tasks[ti].num_classes,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use explainti_core::build_tokenizer;
    use explainti_corpus::{generate_git, generate_wiki, GitConfig, WikiConfig};

    #[test]
    fn value_index_finds_sharing_columns() {
        let d = generate_wiki(&WikiConfig { num_tables: 60, seed: 51, ..Default::default() });
        let idx = ValueIndex::build(&d);
        // Find a train-table cell and ask for sharers from another table.
        let (cref, _) = d.collection.annotated_columns()[0];
        let col = d.collection.column(cref);
        let cells = col.cell_refs();
        let found = idx.sharing_columns(cref.table, &cells, 5);
        assert!(found.iter().all(|&(t, _)| t != cref.table));
    }

    #[test]
    fn strategies_produce_different_serialisations() {
        let d = generate_wiki(&WikiConfig { num_tables: 40, seed: 52, ..Default::default() });
        let tok = build_tokenizer(&d, 2048);
        let cfg = EncoderConfig::bert_like(tok.vocab_size(), 32);
        let doduo = SeqClassifier::new(&d, &tok, cfg.clone(), ContextStrategy::PerColumn, 1);
        let tabert = SeqClassifier::new(&d, &tok, cfg, ContextStrategy::ContentSnapshot, 1);
        // Some multi-column table must serialise differently.
        let differs =
            doduo.tasks[0].samples.iter().zip(&tabert.tasks[0].samples).any(|(a, b)| a.0 != b.0);
        assert!(differs, "content snapshot changed nothing");
    }

    #[test]
    fn git_dataset_registers_only_type_task() {
        let d = generate_git(&GitConfig { num_tables: 30, seed: 53, ..Default::default() });
        let tok = build_tokenizer(&d, 2048);
        let cfg = EncoderConfig::bert_like(tok.vocab_size(), 32);
        let m = SeqClassifier::new(&d, &tok, cfg, ContextStrategy::PerColumn, 1);
        assert!(m.supports(TaskKind::Type));
        assert!(!m.supports(TaskKind::Relation));
    }

    #[test]
    fn names_match_paper_rows() {
        assert_eq!(ContextStrategy::PerColumn.model_name(), "Doduo");
        assert_eq!(ContextStrategy::ValueSharing.model_name(), "TCN");
    }

    /// Short end-to-end fine-tune on a tiny corpus: must beat chance.
    #[test]
    fn doduo_like_learns() {
        let d = generate_wiki(&WikiConfig { num_tables: 50, seed: 54, ..Default::default() });
        let tok = build_tokenizer(&d, 2048);
        let cfg = EncoderConfig::bert_like(tok.vocab_size(), 24);
        let mut m = SeqClassifier::new(&d, &tok, cfg, ContextStrategy::PerColumn, 1);
        m.epochs = 2;
        m.train();
        let f1 = m.evaluate(TaskKind::Type, Split::Train);
        assert!(f1.micro > 0.2, "train micro {}", f1.micro);
    }
}
