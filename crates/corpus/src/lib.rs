//! # explainti-corpus
//!
//! Seeded synthetic benchmarks standing in for the WikiTable and GitTables
//! corpora the paper evaluates on (the real data and its annotation
//! pipeline are not reproducible here; DESIGN.md §2 documents why the
//! substitution preserves the experimental shapes).
//!
//! * [`wiki::generate_wiki`] — Web-table corpus: shared titles/headers,
//!   topic-correlated types, ambiguous "weak" tables, 24 types,
//!   16 relations.
//! * [`git::generate_git`] — database-table corpus: unique titles, generic
//!   headers, Zipf-skewed labels, 30 types, no relations.
//!
//! Both record **provenance** (which cells carry the label signal), the
//! ground truth that `explainti-xeval`'s simulated judges score
//! explanations against.

#![warn(missing_docs)]

pub mod dataset;
pub mod git;
pub mod ontology;
pub mod wiki;

pub use dataset::{ColProvenance, Dataset, DatasetStats, PairProvenance, Split};
pub use git::{generate_git, GitConfig};
pub use wiki::{generate_wiki, WikiConfig};

/// Reads the `EXPLAINTI_SCALE` environment variable (default `1.0`) used by
/// the bench harness to grow or shrink every experiment consistently.
pub fn scale_from_env() -> f64 {
    std::env::var("EXPLAINTI_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|v| *v > 0.0)
        .unwrap_or(1.0)
}

/// Scales a count by [`scale_from_env`]-style factor with a floor of 1.
pub fn scaled(base: usize, scale: f64) -> usize {
    ((base as f64 * scale).round() as usize).max(1)
}

#[cfg(test)]
mod tests {
    #[test]
    fn scaled_floors_at_one() {
        assert_eq!(super::scaled(10, 0.001), 1);
        assert_eq!(super::scaled(10, 2.0), 20);
    }
}
