//! Synthetic Web-table generator mirroring the WikiTable benchmark.
//!
//! What the generator preserves from the real corpus (DESIGN.md §2):
//!
//! * **Title sharing** — each topic owns a small pool of distinct titles so
//!   several tables share one (the title bridge of Algorithm 3);
//! * **Header sharing** — headers come from per-type pools, so columns with
//!   the same header across tables usually share a label (the header
//!   bridge);
//! * **Local ambiguity** — a `weak_prob` fraction of tables draws cells
//!   mostly from the confusion-group shared pool and carries a generic
//!   title, so their columns cannot be typed from content alone and profit
//!   from contextual/structural signal, the effect Table III's `w/o SE`
//!   ablation measures;
//! * **Skewed labels** — topics are sampled from a Zipf-like distribution,
//!   producing the micro/macro-F1 gap of the paper.

use crate::dataset::{assign_splits, ColProvenance, Dataset, PairProvenance};
use crate::ontology::{
    shared_pool, wiki_relation_labels, wiki_type_labels, QUALIFIERS, WIKI_TOPICS, WIKI_TYPES,
};
use explainti_table::{Column, RelationAnnotation, Table, TableCollection};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Wiki-like generator parameters.
#[derive(Debug, Clone)]
pub struct WikiConfig {
    /// Number of tables to generate.
    pub num_tables: usize,
    /// Inclusive row-count range per table.
    pub rows: (usize, usize),
    /// Probability that a table is weak (ambiguous cells, generic title).
    pub weak_prob: f64,
    /// Probability that a clean column's header is a generic group header
    /// instead of a type-specific one (weak columns use a much higher
    /// probability). Generic headers are what keep content-only models
    /// below the ceiling, as in the real corpus.
    pub generic_header_prob: f64,
    /// Number of distinct titles per topic (smaller = denser title groups).
    pub titles_per_topic: usize,
    /// RNG seed.
    pub seed: u64,
}

impl Default for WikiConfig {
    fn default() -> Self {
        Self {
            num_tables: 900,
            rows: (5, 15),
            weak_prob: 0.20,
            generic_header_prob: 0.30,
            titles_per_topic: 24,
            seed: 0x_71b1e5,
        }
    }
}

const GENERIC_TITLES: &[&str] = &[
    "statistics",
    "list of results",
    "overview",
    "summary table",
    "records",
    "annual report",
    "selected entries",
    "data table",
];

/// Group-scoped generic headers: they do not reveal the column type but
/// do stay within a confusion group, like "name" (people-ish) or
/// "venue" (place-ish) in real Web tables. Keeping them group-scoped
/// preserves the header-bridge homophily the SE module relies on.
const GENERIC_HEADERS_BY_GROUP: &[&[&str]] = &[
    &["name", "who"],         // group 0: people-ish
    &["place name", "where"], // group 1: places
    &["organisation", "org"], // group 2: organisations
    &["title", "work"],       // group 3: works
    &["number", "figure"],    // group 4: numeric
];

/// Zipf-ish topic sampling: topic `i` has weight `1/(i+1)`.
fn sample_topic(rng: &mut SmallRng) -> usize {
    let n = WIKI_TOPICS.len();
    let total: f64 = (0..n).map(|i| 1.0 / (i + 1) as f64).sum();
    let mut roll = rng.gen::<f64>() * total;
    for i in 0..n {
        roll -= 1.0 / (i + 1) as f64;
        if roll <= 0.0 {
            return i;
        }
    }
    n - 1
}

fn pick<'a>(pool: &[&'a str], rng: &mut SmallRng) -> &'a str {
    pool[rng.gen_range(0..pool.len())]
}

/// Generates a column of `rows` cells for `type_idx`, recording which rows
/// came from the discriminative core pool.
fn generate_column(
    type_idx: usize,
    rows: usize,
    weak: bool,
    generic_header_prob: f64,
    rng: &mut SmallRng,
) -> (Column, ColProvenance) {
    let spec = &WIKI_TYPES[type_idx];
    let core_prob = if weak { 0.10 } else { 0.55 };
    let shared = shared_pool(spec.confusion_group);
    let mut cells = Vec::with_capacity(rows);
    let mut signal_rows = Vec::new();
    for row in 0..rows {
        if rng.gen::<f64>() < core_prob {
            signal_rows.push(row);
            cells.push(pick(spec.core_pool, rng).to_string());
        } else {
            cells.push(pick(shared, rng).to_string());
        }
    }
    let generic_prob = if weak { 0.35 } else { generic_header_prob };
    let header = if rng.gen::<f64>() < generic_prob {
        let pool = GENERIC_HEADERS_BY_GROUP[spec.confusion_group % GENERIC_HEADERS_BY_GROUP.len()];
        pick(pool, rng).to_string()
    } else {
        pick(spec.headers, rng).to_string()
    };
    (Column::new(header, cells, Some(type_idx)), ColProvenance { signal_rows, weak })
}

/// Generates the Wiki-like dataset.
pub fn generate_wiki(cfg: &WikiConfig) -> Dataset {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);

    // Pre-generate the shared title pools per topic.
    let title_pools: Vec<Vec<String>> = WIKI_TOPICS
        .iter()
        .map(|topic| {
            (0..cfg.titles_per_topic.max(1))
                .map(|_| {
                    let template = pick(topic.titles, &mut rng);
                    template.replace("{q}", pick(QUALIFIERS, &mut rng))
                })
                .collect()
        })
        .collect();

    let relation_labels = wiki_relation_labels();
    let rel_index = |name: &str| relation_labels.iter().position(|n| n == name).unwrap();

    let mut tables = Vec::with_capacity(cfg.num_tables);
    let mut col_provenance = Vec::new();
    let mut pair_provenance = Vec::new();

    for _ in 0..cfg.num_tables {
        let topic_idx = sample_topic(&mut rng);
        let topic = &WIKI_TOPICS[topic_idx];
        let weak = rng.gen::<f64>() < cfg.weak_prob;
        let title = if weak {
            pick(GENERIC_TITLES, &mut rng).to_string()
        } else {
            title_pools[topic_idx][rng.gen_range(0..title_pools[topic_idx].len())].clone()
        };
        let rows = rng.gen_range(cfg.rows.0..=cfg.rows.1);

        // 1-3 annotated columns, averaging ~1.7 as in the real corpus.
        let n_cols = match rng.gen::<f64>() {
            r if r < 0.45 => 1,
            r if r < 0.85 => 2,
            _ => 3,
        };
        let mut type_choices: Vec<usize> = topic.types.to_vec();
        // Fisher-Yates prefix shuffle for the chosen columns.
        for i in 0..n_cols.min(type_choices.len()) {
            let j = rng.gen_range(i..type_choices.len());
            type_choices.swap(i, j);
        }
        let chosen: Vec<usize> = type_choices.into_iter().take(n_cols).collect();

        let mut columns = Vec::new();
        let mut table_col_prov = Vec::new();
        for &t in &chosen {
            let (col, prov) = generate_column(t, rows, weak, cfg.generic_header_prob, &mut rng);
            columns.push(col);
            table_col_prov.push(prov);
        }
        // Optional unannotated filler column.
        if rng.gen::<f64>() < 0.3 {
            let filler: Vec<String> =
                (0..rows).map(|_| pick(shared_pool(4), &mut rng).to_string()).collect();
            columns.push(Column::new("notes", filler, None));
        }

        // Relations that the topic schema defines between present columns.
        let mut relations = Vec::new();
        for &(s_type, o_type, name) in topic.relations {
            let s = chosen.iter().position(|&t| t == s_type);
            let o = chosen.iter().position(|&t| t == o_type);
            if let (Some(s), Some(o)) = (s, o) {
                if rng.gen::<f64>() < 0.9 {
                    relations.push(RelationAnnotation {
                        subject: s,
                        object: o,
                        label: rel_index(name),
                    });
                    pair_provenance.push(PairProvenance {
                        subject_signal_rows: table_col_prov[s].signal_rows.clone(),
                        object_signal_rows: table_col_prov[o].signal_rows.clone(),
                        weak,
                    });
                }
            }
        }

        col_provenance.extend(table_col_prov);
        tables.push(Table { title, columns, relations });
    }

    let table_split = assign_splits(tables.len());
    Dataset {
        name: "wiki-synth".to_string(),
        collection: TableCollection { tables, type_labels: wiki_type_labels(), relation_labels },
        table_split,
        col_provenance,
        pair_provenance,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Split;

    fn small() -> Dataset {
        generate_wiki(&WikiConfig { num_tables: 120, seed: 7, ..Default::default() })
    }

    #[test]
    fn provenance_aligns_with_samples() {
        let d = small();
        assert_eq!(d.col_provenance.len(), d.collection.annotated_columns().len());
        assert_eq!(d.pair_provenance.len(), d.collection.annotated_pairs().len());
    }

    #[test]
    fn signal_rows_point_at_core_pool_cells() {
        let d = small();
        for (i, (cref, label)) in d.collection.annotated_columns().iter().enumerate() {
            let col = d.collection.column(*cref);
            let spec = &WIKI_TYPES[*label];
            for &row in &d.col_provenance[i].signal_rows {
                assert!(
                    spec.core_pool.contains(&col.cells[row].as_str()),
                    "signal row {row} of {} is not a core cell",
                    spec.name
                );
            }
        }
    }

    #[test]
    fn average_columns_is_near_one_point_seven() {
        let d = generate_wiki(&WikiConfig { num_tables: 600, seed: 3, ..Default::default() });
        let avg = d.collection.avg_annotated_cols();
        assert!((1.4..=2.0).contains(&avg), "avg annotated cols {avg}");
    }

    #[test]
    fn titles_are_shared_across_tables() {
        let d = small();
        let mut counts = std::collections::HashMap::new();
        for t in &d.collection.tables {
            *counts.entry(t.title.clone()).or_insert(0usize) += 1;
        }
        assert!(counts.values().any(|&c| c >= 2), "no shared titles generated");
    }

    #[test]
    fn weak_tables_exist_and_are_marked() {
        let d = small();
        let weak = d.col_provenance.iter().filter(|p| p.weak).count();
        let total = d.col_provenance.len();
        let frac = weak as f64 / total as f64;
        assert!((0.1..0.45).contains(&frac), "weak fraction {frac}");
    }

    #[test]
    fn weak_columns_have_fewer_signal_cells() {
        let d = generate_wiki(&WikiConfig { num_tables: 400, seed: 9, ..Default::default() });
        let cols = d.collection.annotated_columns();
        let mut weak_frac = 0.0;
        let mut weak_n = 0.0;
        let mut clean_frac = 0.0;
        let mut clean_n = 0.0;
        for (i, (cref, _)) in cols.iter().enumerate() {
            let rows = d.collection.column(*cref).cells.len() as f64;
            let frac = d.col_provenance[i].signal_rows.len() as f64 / rows;
            if d.col_provenance[i].weak {
                weak_frac += frac;
                weak_n += 1.0;
            } else {
                clean_frac += frac;
                clean_n += 1.0;
            }
        }
        assert!(weak_frac / weak_n < clean_frac / clean_n - 0.15);
    }

    #[test]
    fn relations_reference_valid_columns() {
        let d = small();
        for t in &d.collection.tables {
            for r in &t.relations {
                assert!(r.subject < t.columns.len());
                assert!(r.object < t.columns.len());
                assert!(r.label < d.collection.relation_labels.len());
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let a = small();
        let b = small();
        assert_eq!(a.collection.tables.len(), b.collection.tables.len());
        assert_eq!(a.collection.tables[17], b.collection.tables[17]);
    }

    #[test]
    fn all_splits_are_populated() {
        let d = small();
        for split in [Split::Train, Split::Valid, Split::Test] {
            assert!(!d.type_sample_indices(split).is_empty(), "{split:?} empty");
        }
    }

    #[test]
    fn label_distribution_is_skewed() {
        let d = generate_wiki(&WikiConfig { num_tables: 600, seed: 5, ..Default::default() });
        let mut counts = vec![0usize; d.collection.type_labels.len()];
        for (_, label) in d.collection.annotated_columns() {
            counts[label] += 1;
        }
        let max = *counts.iter().max().unwrap();
        let nonzero_min = counts.iter().filter(|&&c| c > 0).min().copied().unwrap();
        assert!(max >= nonzero_min * 4, "labels not skewed: max {max} min {nonzero_min}");
    }
}
