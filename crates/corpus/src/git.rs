//! Synthetic database-table generator mirroring the GitTables `organism`
//! subset.
//!
//! GitTables differs from Web tables in exactly the ways the paper's
//! results hinge on (Table III: TCN collapses, SE barely helps, micro-F1
//! is very high while macro-F1 lags):
//!
//! * tables are **CSV-like**: unique file-name titles, so the title bridge
//!   of the column graph carries no signal;
//! * headers are frequently **generic** (`col_3`, `field`), weakening the
//!   header bridge too;
//! * columns are **lexically regular** (codes, measurements, enumerations)
//!   so content alone types most columns — micro-F1 is easy;
//! * the label distribution is **heavily Zipf-skewed** over many semantic
//!   types, which keeps macro-F1 down.

use crate::dataset::{assign_splits, ColProvenance, Dataset};
use explainti_table::{Column, Table, TableCollection};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Git-like generator parameters.
#[derive(Debug, Clone)]
pub struct GitConfig {
    /// Number of tables.
    pub num_tables: usize,
    /// Inclusive row-count range.
    pub rows: (usize, usize),
    /// Inclusive annotated-column-count range (avg ≈ 4 in the paper).
    pub cols: (usize, usize),
    /// Probability a header is generic instead of type-derived.
    pub generic_header_prob: f64,
    /// Probability a column is ambiguous (shared-pool heavy).
    pub weak_prob: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for GitConfig {
    fn default() -> Self {
        Self {
            num_tables: 320,
            rows: (20, 40),
            cols: (3, 5),
            generic_header_prob: 0.45,
            weak_prob: 0.25,
            seed: 0x617,
        }
    }
}

/// A DB-style semantic type generated programmatically.
struct GitType {
    name: String,
    headers: Vec<String>,
    core_pool: Vec<String>,
    group: usize,
}

/// Schema.org / DBpedia-flavoured stems for the `organism` subset plus
/// generic DB types.
const GIT_STEMS: &[(&str, &str)] = &[
    ("organism.genus", "genus"),
    ("organism.species", "species"),
    ("organism.family", "family"),
    ("organism.habitat", "habitat"),
    ("organism.phylum", "phylum"),
    ("organism.common_name", "commonname"),
    ("organism.conservation_status", "status"),
    ("address.postal_code", "postcode"),
    ("address.street", "street"),
    ("address.region", "region"),
    ("product.sku", "sku"),
    ("product.price", "price"),
    ("product.category", "category"),
    ("person.email", "email"),
    ("person.phone", "phone"),
    ("event.start_date", "startdate"),
    ("event.duration", "duration"),
    ("measure.weight", "weight"),
    ("measure.length", "length"),
    ("measure.temperature", "temperature"),
    ("code.identifier", "ident"),
    ("code.checksum", "checksum"),
    ("media.url", "url"),
    ("media.format", "format"),
    ("finance.amount", "amount"),
    ("finance.account", "account"),
    ("geo.latitude", "latitude"),
    ("geo.longitude", "longitude"),
    ("text.description", "description"),
    ("text.comment", "comment"),
];

fn build_types() -> Vec<GitType> {
    GIT_STEMS
        .iter()
        .enumerate()
        .map(|(i, (name, stem))| {
            let headers = vec![
                stem.to_string(),
                format!("{stem} id"),
                name.rsplit('.').next().unwrap().replace('_', " "),
            ];
            // Deterministic per-type surface forms: stem + structured suffix.
            let core_pool = (0..12)
                .map(|k| match i % 4 {
                    0 => format!("{stem} {}", 100 + k * 7),
                    1 => format!("{}-{:04}", stem.to_uppercase(), 1000 + k * 13),
                    2 => format!("{stem}_{}", (b'a' + (k % 26) as u8) as char),
                    _ => format!("{} {} unit", k * 3 + 1, stem),
                })
                .collect();
            GitType { name: name.to_string(), headers, core_pool, group: i / 6 }
        })
        .collect()
}

const GENERIC_HEADERS: &[&str] = &["field", "value", "data", "entry", "attribute"];

/// Formatting values shared across *all* types (CSV exports reuse record
/// ids, nulls and unit strings regardless of semantics) — this is what
/// poisons TCN's value-sharing context on database tables.
fn git_shared_pool(_group: usize) -> Vec<String> {
    (0..14).map(|k| format!("rec {}", 1000 + k * 3)).collect()
}

/// Zipf-skewed type sampling (weight `1/(i+1)^1.2`).
fn sample_type(n: usize, rng: &mut SmallRng) -> usize {
    let total: f64 = (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(1.5)).sum();
    let mut roll = rng.gen::<f64>() * total;
    for i in 0..n {
        roll -= 1.0 / ((i + 1) as f64).powf(1.5);
        if roll <= 0.0 {
            return i;
        }
    }
    n - 1
}

/// Generates the Git-like dataset (column-type task only, as in the paper).
pub fn generate_git(cfg: &GitConfig) -> Dataset {
    let mut rng = SmallRng::seed_from_u64(cfg.seed);
    let types = build_types();

    let mut tables = Vec::with_capacity(cfg.num_tables);
    let mut col_provenance = Vec::new();

    for ti in 0..cfg.num_tables {
        // Unique CSV-like title: the title bridge is useless by design.
        let title = format!("dataset_{ti:05}.csv");
        let rows = rng.gen_range(cfg.rows.0..=cfg.rows.1);
        let n_cols = rng.gen_range(cfg.cols.0..=cfg.cols.1);

        let mut columns = Vec::with_capacity(n_cols);
        for _ in 0..n_cols {
            let t = sample_type(types.len(), &mut rng);
            let spec = &types[t];
            let weak = rng.gen::<f64>() < cfg.weak_prob;
            let core_prob = if weak { 0.2 } else { 0.65 };
            let shared = git_shared_pool(spec.group);
            let mut cells = Vec::with_capacity(rows);
            let mut signal_rows = Vec::new();
            for row in 0..rows {
                if rng.gen::<f64>() < core_prob {
                    signal_rows.push(row);
                    cells.push(spec.core_pool[rng.gen_range(0..spec.core_pool.len())].clone());
                } else {
                    cells.push(shared[rng.gen_range(0..shared.len())].clone());
                }
            }
            let header = if rng.gen::<f64>() < cfg.generic_header_prob {
                GENERIC_HEADERS[rng.gen_range(0..GENERIC_HEADERS.len())].to_string()
            } else {
                spec.headers[rng.gen_range(0..spec.headers.len())].clone()
            };
            columns.push(Column::new(header, cells, Some(t)));
            col_provenance.push(ColProvenance { signal_rows, weak });
        }
        tables.push(Table::new(title, columns));
    }

    let table_split = assign_splits(tables.len());
    Dataset {
        name: "git-synth".to_string(),
        collection: TableCollection {
            tables,
            type_labels: types.into_iter().map(|t| t.name).collect(),
            relation_labels: Vec::new(),
        },
        table_split,
        col_provenance,
        pair_provenance: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Dataset {
        generate_git(&GitConfig { num_tables: 80, seed: 2, ..Default::default() })
    }

    #[test]
    fn titles_are_unique() {
        let d = small();
        let mut titles: Vec<&String> = d.collection.tables.iter().map(|t| &t.title).collect();
        titles.sort();
        titles.dedup();
        assert_eq!(titles.len(), d.collection.tables.len());
    }

    #[test]
    fn no_relation_annotations() {
        let d = small();
        assert!(d.collection.annotated_pairs().is_empty());
        assert!(d.collection.relation_labels.is_empty());
    }

    #[test]
    fn provenance_aligns() {
        let d = small();
        assert_eq!(d.col_provenance.len(), d.collection.annotated_columns().len());
    }

    #[test]
    fn label_distribution_is_heavily_skewed() {
        let d = generate_git(&GitConfig { num_tables: 300, seed: 4, ..Default::default() });
        let mut counts = vec![0usize; d.collection.type_labels.len()];
        for (_, label) in d.collection.annotated_columns() {
            counts[label] += 1;
        }
        counts.sort_unstable_by(|a, b| b.cmp(a));
        assert!(counts[0] >= counts[counts.len() / 2].max(1) * 3, "no Zipf skew: {counts:?}");
    }

    #[test]
    fn tables_are_wider_than_wiki() {
        let d = small();
        let avg = d.collection.avg_annotated_cols();
        assert!(avg >= 3.0, "avg cols {avg}");
        assert!(d.collection.avg_rows() >= 20.0);
    }

    #[test]
    fn some_headers_are_generic() {
        let d = small();
        let generic = d
            .collection
            .tables
            .iter()
            .flat_map(|t| &t.columns)
            .filter(|c| GENERIC_HEADERS.contains(&c.header.as_str()))
            .count();
        assert!(generic > 0);
    }

    #[test]
    fn deterministic_generation() {
        let a = small();
        let b = small();
        assert_eq!(a.collection.tables[11], b.collection.tables[11]);
    }
}
