//! Type/relation ontology behind the synthetic Web-table corpus.
//!
//! The real WikiTable benchmark annotates columns with Freebase-style
//! hierarchical types (`location.country`, `people.basketball_player`, …)
//! and relations (`basketball_player_stats.team`). This module recreates
//! the *statistical structure* those labels induce:
//!
//! * every type has a **core pool** of discriminative surface forms and a
//!   **shared pool** that overlaps with its confusion group — the overlap
//!   is what makes context (titles, co-columns, graph neighbours) matter;
//! * types cluster into **topics** with title templates and a relation
//!   schema, so table titles correlate with label subsets exactly the way
//!   Wikipedia page titles do.

/// One semantic column type.
#[derive(Debug, Clone)]
pub struct TypeSpec {
    /// Hierarchical label name, e.g. `location.country`.
    pub name: &'static str,
    /// Headers that strongly indicate this type.
    pub headers: &'static [&'static str],
    /// Discriminative cell values (only this type produces them).
    pub core_pool: &'static [&'static str],
    /// Confusion-group id: types in the same group share [`shared_pool`].
    pub confusion_group: usize,
}

/// Cell values shared by every type in a confusion group — drawing from
/// this pool makes a column locally ambiguous.
pub fn shared_pool(group: usize) -> &'static [&'static str] {
    SHARED_POOLS[group % SHARED_POOLS.len()]
}

const SHARED_POOLS: &[&[&str]] = &[
    // 0: people-ish names.
    &[
        "jordan taylor",
        "casey morgan",
        "alex reed",
        "sam parker",
        "jamie brooks",
        "riley hayes",
        "drew campbell",
        "quinn foster",
        "avery mitchell",
        "logan price",
    ],
    // 1: place-ish names.
    &[
        "georgia",
        "san marino",
        "victoria",
        "jersey",
        "cordoba",
        "santiago",
        "valencia",
        "monterrey",
        "alexandria",
        "hamilton",
    ],
    // 2: org-ish names.
    &[
        "united",
        "city fc",
        "athletic club",
        "rangers",
        "dynamo",
        "olympia",
        "national",
        "central",
        "union",
        "metro",
    ],
    // 3: work-title-ish names.
    &[
        "the return",
        "horizon",
        "legacy",
        "the crossing",
        "night falls",
        "echoes",
        "the long road",
        "aurora",
        "second chance",
        "the gift",
    ],
    // 4: numeric-ish tokens.
    &["12", "45", "103", "7", "88", "230", "5", "61", "19", "340"],
];

/// The Wiki-like type system (24 types across 8 confusion groups).
pub const WIKI_TYPES: &[TypeSpec] = &[
    TypeSpec {
        name: "people.person",
        headers: &["name", "person"],
        core_pool: &[
            "maria delgado",
            "henrik olsen",
            "amara okafor",
            "luca moretti",
            "yuki tanaka",
            "fatima zahra",
            "piotr kowalski",
            "elena petrova",
        ],
        confusion_group: 0,
    },
    TypeSpec {
        name: "people.basketball_player",
        headers: &["player", "guard", "forward"],
        core_pool: &[
            "les jepsen",
            "bo kimble",
            "gary payton",
            "dennis scott",
            "derrick coleman",
            "lionel simmons",
            "kendall gill",
            "chris jackson",
        ],
        confusion_group: 0,
    },
    TypeSpec {
        name: "people.coach",
        headers: &["coach", "manager", "head coach"],
        core_pool: &[
            "phil jackson",
            "pat riley",
            "gregg popovich",
            "don nelson",
            "lenny wilkens",
            "chuck daly",
            "jerry sloan",
            "rick adelman",
        ],
        confusion_group: 0,
    },
    TypeSpec {
        name: "people.politician",
        headers: &["politician", "senator", "mayor"],
        core_pool: &[
            "angela merkel",
            "shinzo abe",
            "jacinda ardern",
            "justin trudeau",
            "nelson mandela",
            "golda meir",
            "vaclav havel",
            "lee kuan yew",
        ],
        confusion_group: 0,
    },
    TypeSpec {
        name: "location.country",
        headers: &["country", "nation", "nationality"],
        core_pool: &[
            "costa rica",
            "guatemala",
            "kenya",
            "portugal",
            "norway",
            "vietnam",
            "morocco",
            "uruguay",
            "finland",
            "nepal",
        ],
        confusion_group: 1,
    },
    TypeSpec {
        name: "location.city",
        headers: &["city", "town", "host city"],
        core_pool: &[
            "barcelona",
            "kyoto",
            "nairobi",
            "porto",
            "bergen",
            "hanoi",
            "casablanca",
            "montevideo",
            "tampere",
            "pokhara",
        ],
        confusion_group: 1,
    },
    TypeSpec {
        name: "location.location",
        headers: &["location", "place", "venue"],
        core_pool: &[
            "mount kilimanjaro",
            "lake geneva",
            "sahara desert",
            "rhine valley",
            "gobi desert",
            "amazon basin",
            "nile delta",
            "great barrier reef",
        ],
        confusion_group: 1,
    },
    TypeSpec {
        name: "location.stadium",
        headers: &["stadium", "arena", "ground"],
        core_pool: &[
            "camp nou",
            "madison square garden",
            "wembley",
            "maracana",
            "old trafford",
            "staples center",
            "san siro",
            "signal iduna park",
        ],
        confusion_group: 1,
    },
    TypeSpec {
        name: "sports.team",
        headers: &["team", "nba team", "club"],
        core_pool: &[
            "golden state warriors",
            "chicago bulls",
            "boston celtics",
            "los angeles lakers",
            "detroit pistons",
            "phoenix suns",
            "portland trail blazers",
            "miami heat",
        ],
        confusion_group: 2,
    },
    TypeSpec {
        name: "sports.league",
        headers: &["league", "division", "competition"],
        core_pool: &[
            "premier league",
            "la liga",
            "bundesliga",
            "serie a",
            "eredivisie",
            "ligue 1",
            "mls",
            "j league",
        ],
        confusion_group: 2,
    },
    TypeSpec {
        name: "organization.company",
        headers: &["company", "sponsor", "employer"],
        core_pool: &[
            "acme industries",
            "globex corporation",
            "initech",
            "umbrella corp",
            "stark industries",
            "wayne enterprises",
            "tyrell corp",
            "cyberdyne systems",
        ],
        confusion_group: 2,
    },
    TypeSpec {
        name: "organization.university",
        headers: &["university", "college", "school"],
        core_pool: &[
            "university of zagreb",
            "kyoto university",
            "mcgill university",
            "university of cape town",
            "trinity college",
            "uppsala university",
            "charles university",
            "university of otago",
        ],
        confusion_group: 2,
    },
    TypeSpec {
        name: "time.year",
        headers: &["year", "season", "draft year"],
        core_pool: &["1990", "1994", "2002", "2008", "2014", "1987", "1999", "2016"],
        confusion_group: 4,
    },
    TypeSpec {
        name: "time.date",
        headers: &["date", "day", "opened"],
        core_pool: &[
            "january 14",
            "march 3",
            "july 22",
            "october 9",
            "december 1",
            "april 30",
            "august 17",
            "february 28",
        ],
        confusion_group: 4,
    },
    TypeSpec {
        name: "music.album",
        headers: &["album", "record", "release"],
        core_pool: &[
            "abbey road",
            "thriller",
            "rumours",
            "nevermind",
            "blue train",
            "kind of blue",
            "purple rain",
            "graceland",
        ],
        confusion_group: 3,
    },
    TypeSpec {
        name: "music.artist",
        headers: &["artist", "band", "musician"],
        core_pool: &[
            "the beatles",
            "miles davis",
            "nina simone",
            "fela kuti",
            "bjork",
            "radiohead",
            "daft punk",
            "caetano veloso",
        ],
        confusion_group: 0,
    },
    TypeSpec {
        name: "film.film",
        headers: &["film", "movie", "title"],
        core_pool: &[
            "seven samurai",
            "casablanca",
            "city of god",
            "spirited away",
            "the godfather",
            "metropolis",
            "parasite",
            "la dolce vita",
        ],
        confusion_group: 3,
    },
    TypeSpec {
        name: "film.director",
        headers: &["director", "filmmaker", "directed by"],
        core_pool: &[
            "akira kurosawa",
            "agnes varda",
            "satyajit ray",
            "federico fellini",
            "wong kar wai",
            "hayao miyazaki",
            "bong joon ho",
            "ingmar bergman",
        ],
        confusion_group: 0,
    },
    TypeSpec {
        name: "book.book",
        headers: &["book", "novel", "work"],
        core_pool: &[
            "one hundred years of solitude",
            "things fall apart",
            "beloved",
            "the trial",
            "invisible cities",
            "pedro paramo",
            "kokoro",
            "dead souls",
        ],
        confusion_group: 3,
    },
    TypeSpec {
        name: "book.author",
        headers: &["author", "writer", "novelist"],
        core_pool: &[
            "gabriel garcia marquez",
            "chinua achebe",
            "toni morrison",
            "franz kafka",
            "italo calvino",
            "juan rulfo",
            "natsume soseki",
            "nikolai gogol",
        ],
        confusion_group: 0,
    },
    TypeSpec {
        name: "food.dish",
        headers: &["dish", "food", "cuisine"],
        core_pool: &[
            "paella", "ramen", "injera", "ceviche", "pierogi", "tagine", "feijoada", "bibimbap",
        ],
        confusion_group: 3,
    },
    TypeSpec {
        name: "award.award",
        headers: &["award", "prize", "honor"],
        core_pool: &[
            "nobel prize",
            "fields medal",
            "palme d or",
            "booker prize",
            "grammy award",
            "turing award",
            "pritzker prize",
            "ballon d or",
        ],
        confusion_group: 3,
    },
    TypeSpec {
        name: "language.language",
        headers: &["language", "tongue", "spoken"],
        core_pool: &[
            "swahili", "quechua", "tagalog", "basque", "amharic", "maori", "catalan", "yoruba",
        ],
        confusion_group: 1,
    },
    TypeSpec {
        name: "currency.currency",
        headers: &["currency", "money", "tender"],
        core_pool: &["krona", "dirham", "guarani", "shilling", "zloty", "baht", "rand", "forint"],
        confusion_group: 2,
    },
];

/// A table topic: title templates plus the types it can contain.
#[derive(Debug, Clone)]
pub struct TopicSpec {
    /// Topic name (debugging only).
    pub name: &'static str,
    /// Title templates; `{q}` is replaced with a qualifier.
    pub titles: &'static [&'static str],
    /// Indices into [`WIKI_TYPES`] that appear in this topic's tables.
    pub types: &'static [usize],
    /// Relation schema: `(subject type idx, object type idx, relation name)`.
    pub relations: &'static [(usize, usize, &'static str)],
}

/// The Wiki-like topics (10 topics, 16 relation labels).
pub const WIKI_TOPICS: &[TopicSpec] = &[
    TopicSpec {
        name: "nba",
        titles: &["{q} nba draft", "{q} nba season", "nba finals {q}"],
        types: &[1, 8, 2, 12],
        relations: &[
            (1, 8, "basketball_player_stats.team"),
            (2, 8, "basketball_coach.team"),
            (1, 12, "pro_athlete.draft_year"),
        ],
    },
    TopicSpec {
        name: "soccer",
        titles: &["{q} world cup", "{q} league table", "{q} transfers"],
        types: &[9, 8, 4, 7],
        relations: &[
            (8, 9, "sports_team.league"),
            (9, 4, "sports_league.country"),
            (8, 7, "sports_team.stadium"),
        ],
    },
    TopicSpec {
        name: "olympics",
        titles: &["{q} summer olympics", "{q} winter olympics", "{q} olympic medals"],
        types: &[4, 5, 0, 12],
        relations: &[(5, 4, "city.country"), (0, 4, "person.nationality")],
    },
    TopicSpec {
        name: "movies",
        titles: &["films of {q}", "{q} film festival", "{q} box office"],
        types: &[16, 17, 12, 21],
        relations: &[
            (16, 17, "film.directed_by"),
            (16, 12, "film.release_year"),
            (16, 21, "film.award"),
        ],
    },
    TopicSpec {
        name: "music",
        titles: &["{q} albums", "{q} music charts", "discography {q}"],
        types: &[14, 15, 12],
        relations: &[(14, 15, "album.artist"), (14, 12, "album.release_year")],
    },
    TopicSpec {
        name: "books",
        titles: &["{q} novels", "{q} literature", "books of {q}"],
        types: &[18, 19, 21],
        relations: &[(18, 19, "book.author"), (19, 21, "author.award")],
    },
    TopicSpec {
        name: "geography",
        titles: &["geography of {q}", "{q} demographics", "{q} landmarks"],
        types: &[4, 5, 6, 22, 23],
        relations: &[
            (5, 4, "city.country"),
            (4, 22, "country.language"),
            (4, 23, "country.currency"),
        ],
    },
    TopicSpec {
        name: "companies",
        titles: &["{q} companies", "{q} industry report", "largest employers {q}"],
        types: &[10, 5, 0],
        relations: &[(10, 5, "company.headquarters")],
    },
    TopicSpec {
        name: "universities",
        titles: &["{q} universities", "{q} rankings", "academia in {q}"],
        types: &[11, 5, 3],
        relations: &[(11, 5, "university.city")],
    },
    TopicSpec {
        name: "cuisine",
        titles: &["cuisine of {q}", "{q} dishes", "{q} food guide"],
        types: &[20, 4],
        relations: &[(20, 4, "dish.origin")],
    },
];

/// Qualifiers substituted into title templates.
pub const QUALIFIERS: &[&str] = &[
    "1990", "1994", "1998", "2002", "2006", "2010", "2014", "2018", "spring", "autumn", "europe",
    "asia", "africa", "americas",
];

/// All distinct relation label names, in deterministic order.
pub fn wiki_relation_labels() -> Vec<String> {
    let mut out = Vec::new();
    for topic in WIKI_TOPICS {
        for &(_, _, name) in topic.relations {
            if !out.iter().any(|n: &String| n == name) {
                out.push(name.to_string());
            }
        }
    }
    out
}

/// All type label names, in [`WIKI_TYPES`] order.
pub fn wiki_type_labels() -> Vec<String> {
    WIKI_TYPES.iter().map(|t| t.name.to_string()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topic_type_indices_are_valid() {
        for topic in WIKI_TOPICS {
            for &t in topic.types {
                assert!(t < WIKI_TYPES.len(), "{} has bad type index {t}", topic.name);
            }
            for &(s, o, _) in topic.relations {
                assert!(topic.types.contains(&s), "{}: subject {s} not in topic", topic.name);
                assert!(topic.types.contains(&o), "{}: object {o} not in topic", topic.name);
            }
        }
    }

    #[test]
    fn core_pools_are_disjoint_from_shared() {
        for spec in WIKI_TYPES {
            let shared = shared_pool(spec.confusion_group);
            for v in spec.core_pool {
                assert!(!shared.contains(v), "{} core value {v} leaks into shared pool", spec.name);
            }
        }
    }

    #[test]
    fn relation_labels_are_unique_and_nonempty() {
        let labels = wiki_relation_labels();
        assert!(labels.len() >= 10);
        let mut dedup = labels.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
    }

    #[test]
    fn every_type_has_headers_and_pool() {
        for spec in WIKI_TYPES {
            assert!(!spec.headers.is_empty());
            assert!(spec.core_pool.len() >= 6, "{} pool too small", spec.name);
        }
    }
}
