//! Dataset container: a table collection plus splits and provenance.
//!
//! Provenance records which cells actually carry the label signal (they
//! were drawn from the type's discriminative core pool). The simulated
//! judges in `explainti-xeval` score explanations by overlap with this
//! ground truth — the synthetic stand-in for the paper's human evaluation.

use explainti_table::TableCollection;
use serde::{Deserialize, Serialize};

/// Which split a table belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Split {
    /// Training split (80%).
    Train,
    /// Validation split (10%).
    Valid,
    /// Test split (10%).
    Test,
}

/// Ground-truth rationale for one annotated column.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ColProvenance {
    /// Row indices whose cells came from the type's core pool.
    pub signal_rows: Vec<usize>,
    /// True when the column was generated ambiguous (shared-pool heavy).
    pub weak: bool,
}

/// Ground-truth rationale for one annotated column pair.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct PairProvenance {
    /// Signal rows of the subject column.
    pub subject_signal_rows: Vec<usize>,
    /// Signal rows of the object column.
    pub object_signal_rows: Vec<usize>,
    /// True when either column is ambiguous.
    pub weak: bool,
}

/// A generated benchmark: tables, labels, splits, and provenance.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dataset {
    /// Human-readable dataset name (`wiki-synth`, `git-synth`).
    pub name: String,
    /// The tables and label vocabularies.
    pub collection: TableCollection,
    /// Split assignment per table (aligned with `collection.tables`).
    pub table_split: Vec<Split>,
    /// Provenance per annotated column (aligned with
    /// `collection.annotated_columns()`).
    pub col_provenance: Vec<ColProvenance>,
    /// Provenance per annotated pair (aligned with
    /// `collection.annotated_pairs()`).
    pub pair_provenance: Vec<PairProvenance>,
}

impl Dataset {
    /// Sample indices of the column-type task belonging to `split`.
    pub fn type_sample_indices(&self, split: Split) -> Vec<usize> {
        self.collection
            .annotated_columns()
            .iter()
            .enumerate()
            .filter(|(_, (cref, _))| self.table_split[cref.table] == split)
            .map(|(i, _)| i)
            .collect()
    }

    /// Sample indices of the column-relation task belonging to `split`.
    pub fn relation_sample_indices(&self, split: Split) -> Vec<usize> {
        self.collection
            .annotated_pairs()
            .iter()
            .enumerate()
            .filter(|(_, (pref, _))| self.table_split[pref.table] == split)
            .map(|(i, _)| i)
            .collect()
    }

    /// Dataset statistics in Table II's columns.
    pub fn statistics(&self) -> DatasetStats {
        DatasetStats {
            name: self.name.clone(),
            num_tables: self.collection.tables.len(),
            avg_rows: self.collection.avg_rows(),
            avg_cols: self.collection.avg_annotated_cols(),
            num_type_labels: self.collection.type_labels.len(),
            num_relation_labels: self.collection.relation_labels.len(),
            num_type_samples: self.collection.annotated_columns().len(),
            num_relation_samples: self.collection.annotated_pairs().len(),
        }
    }
}

/// Row of Table II.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DatasetStats {
    /// Dataset name.
    pub name: String,
    /// Number of tables.
    pub num_tables: usize,
    /// Average rows per table.
    pub avg_rows: f64,
    /// Average annotated columns per table.
    pub avg_cols: f64,
    /// Number of column-type labels.
    pub num_type_labels: usize,
    /// Number of relation labels.
    pub num_relation_labels: usize,
    /// Total annotated columns.
    pub num_type_samples: usize,
    /// Total annotated pairs.
    pub num_relation_samples: usize,
}

/// Deterministically assigns tables to splits with an 8:1:1 ratio by
/// cycling positions (the paper reuses TURL's fixed splits; ours are fixed
/// by construction order, which is itself seeded).
pub fn assign_splits(num_tables: usize) -> Vec<Split> {
    (0..num_tables)
        .map(|i| match i % 10 {
            8 => Split::Valid,
            9 => Split::Test,
            _ => Split::Train,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splits_are_eight_one_one() {
        let s = assign_splits(100);
        let train = s.iter().filter(|&&x| x == Split::Train).count();
        let valid = s.iter().filter(|&&x| x == Split::Valid).count();
        let test = s.iter().filter(|&&x| x == Split::Test).count();
        assert_eq!((train, valid, test), (80, 10, 10));
    }

    #[test]
    fn splits_cover_every_table() {
        assert_eq!(assign_splits(37).len(), 37);
    }
}
