//! Telemetry for the ExplainTI reproduction.
//!
//! Everything the pipeline reports about itself flows through this
//! crate: counters, gauges, and log-linear latency histograms in a
//! global thread-safe [registry](Registry); RAII [`span!`] guards that
//! time nested stages and feed their histograms; an optional JSONL
//! trace sink (`--trace-out`); and an end-of-run [`report`] rendered
//! with the same `TextTable` the bench binaries use.
//!
//! The runtime cost model is explicit:
//! - `EXPLAINTI_LOG=off` reduces every instrumentation point to a
//!   single relaxed atomic load — no clock reads, no formatting, no
//!   allocation.
//! - `info` (the default) records spans and counters into lock-free
//!   atomics; the only lock is the registry map, hit once per call
//!   site thanks to per-site `OnceLock` caching in [`span!`].
//! - `debug` additionally prints each span close to stderr.
//!
//! Span names are dotted paths (`encoder.forward`, `explain.le`) so the
//! report groups the paper's Table V stages naturally.

use std::collections::BTreeMap;
use std::io::Write;
use std::sync::atomic::{AtomicU64, AtomicU8, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};

use explainti_sync::{classes, OrderedMutex};
use std::time::Instant;

use explainti_metrics::report::TextTable;
use serde_json::{json, Value};

pub mod histogram;
pub mod prom;
pub mod slo;
pub mod trace;

pub use histogram::Histogram;
pub use prom::prometheus;
pub use slo::{SloSnapshot, SloWindow};
pub use trace::{next_trace_id, set_trace_seed, RequestTrace, SpanCapture, TraceId, STAGES};

// ---- Level filter -----------------------------------------------------

/// Verbosity, from `EXPLAINTI_LOG` (`off` | `info` | `debug`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// Telemetry fully disabled; instrumentation points cost one atomic load.
    Off = 0,
    /// Spans and counters recorded (the default).
    Info = 1,
    /// `Info` plus a stderr line per span close.
    Debug = 2,
}

/// 255 = not yet initialised from the environment.
static LEVEL: AtomicU8 = AtomicU8::new(255);

fn level_from_env() -> Level {
    match std::env::var("EXPLAINTI_LOG").as_deref() {
        Ok("off") | Ok("0") | Ok("false") | Ok("none") => Level::Off,
        Ok("debug") | Ok("trace") => Level::Debug,
        _ => Level::Info,
    }
}

/// The active level (reads `EXPLAINTI_LOG` on first call).
pub fn level() -> Level {
    // ORDERING: Relaxed — the level is an independent flag with no
    // associated payload to synchronise; stale reads only delay a level
    // change by one observation.
    match LEVEL.load(Ordering::Relaxed) {
        0 => Level::Off,
        1 => Level::Info,
        2 => Level::Debug,
        _ => {
            let l = level_from_env();
            // A concurrent set_level wins; env init is best-effort.
            // ORDERING: Relaxed — same flag-only contract as the load
            // above; no other memory is published by the level.
            let _ = LEVEL.compare_exchange(255, l as u8, Ordering::Relaxed, Ordering::Relaxed);
            level()
        }
    }
}

/// Overrides the level (tests, CLI flags). Takes precedence over the env.
pub fn set_level(l: Level) {
    // ORDERING: Relaxed — flag-only store, see `level`.
    LEVEL.store(l as u8, Ordering::Relaxed);
}

/// Whether any telemetry is recorded. This is the hot-path check: a
/// single relaxed atomic load once the level is initialised.
#[inline]
pub fn enabled() -> bool {
    // ORDERING: Relaxed — hot-path flag load, see `level`.
    match LEVEL.load(Ordering::Relaxed) {
        0 => false,
        255 => level() != Level::Off,
        _ => true,
    }
}

// ---- Registry ---------------------------------------------------------

/// Global store of named counters, gauges, and histograms.
///
/// Metric handles are `Arc`s: call sites cache them (see [`span!`]) and
/// keep recording lock-free. [`Registry::reset`] therefore zeroes
/// metrics in place instead of dropping them, so cached handles stay
/// live across test runs.
pub struct Registry {
    counters: OrderedMutex<BTreeMap<String, Arc<AtomicU64>>>,
    gauges: OrderedMutex<BTreeMap<String, Arc<AtomicU64>>>, // f64 bits
    histograms: OrderedMutex<BTreeMap<String, Arc<Histogram>>>,
}

impl Default for Registry {
    fn default() -> Self {
        Self {
            counters: OrderedMutex::new(&classes::OBS_COUNTERS, BTreeMap::new()),
            gauges: OrderedMutex::new(&classes::OBS_GAUGES, BTreeMap::new()),
            histograms: OrderedMutex::new(&classes::OBS_HISTOGRAMS, BTreeMap::new()),
        }
    }
}

impl Registry {
    /// The named counter, created on first use.
    pub fn counter(&self, name: &str) -> Arc<AtomicU64> {
        let mut map = self.counters.lock();
        map.entry(name.to_string()).or_default().clone()
    }

    /// The named gauge (an `f64` stored as bits), created on first use.
    pub fn gauge(&self, name: &str) -> Arc<AtomicU64> {
        let mut map = self.gauges.lock();
        map.entry(name.to_string()).or_default().clone()
    }

    /// The named histogram, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut map = self.histograms.lock();
        map.entry(name.to_string()).or_default().clone()
    }

    /// Zeroes every metric in place (handles cached by call sites keep
    /// working). Intended for tests and multi-run binaries.
    pub fn reset(&self) {
        // ORDERING: Relaxed — metric cells are independent monotonic
        // scalars; readers tolerate torn-in-time snapshots by design.
        for c in self.counters.lock().values() {
            c.store(0, Ordering::Relaxed); // ORDERING: Relaxed — as above
        }
        // ORDERING: Relaxed — same independent-scalar contract.
        for g in self.gauges.lock().values() {
            g.store(0f64.to_bits(), Ordering::Relaxed); // ORDERING: Relaxed — as above
        }
        for h in self.histograms.lock().values() {
            h.reset();
        }
    }

    pub(crate) fn snapshot(&self) -> Snapshot {
        // ORDERING: Relaxed — snapshots are advisory; each cell is an
        // independent scalar and no cross-metric consistency is promised.
        let counters = self
            .counters
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), v.load(Ordering::Relaxed))) // ORDERING: Relaxed — as above
            .collect();
        // ORDERING: Relaxed — same advisory-snapshot contract.
        let gauges = self
            .gauges
            .lock()
            .iter()
            .map(|(k, v)| (k.clone(), f64::from_bits(v.load(Ordering::Relaxed)))) // ORDERING: Relaxed — as above
            .collect();
        let histograms =
            self.histograms.lock().iter().map(|(k, v)| (k.clone(), v.clone())).collect();
        Snapshot { counters, gauges, histograms }
    }
}

pub(crate) struct Snapshot {
    pub(crate) counters: BTreeMap<String, u64>,
    pub(crate) gauges: BTreeMap<String, f64>,
    pub(crate) histograms: BTreeMap<String, Arc<Histogram>>,
}

/// The process-wide registry.
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(Registry::default)
}

/// Adds `n` to the named counter (no-op when disabled).
pub fn add_counter(name: &str, n: u64) {
    if enabled() {
        // ORDERING: Relaxed — counters are independent monotonic cells;
        // only totals matter, never cross-thread ordering.
        registry().counter(name).fetch_add(n, Ordering::Relaxed);
    }
}

/// Sets the named gauge (no-op when disabled).
pub fn set_gauge(name: &str, v: f64) {
    if enabled() {
        // ORDERING: Relaxed — last-writer-wins advisory value.
        registry().gauge(name).store(v.to_bits(), Ordering::Relaxed);
    }
}

// ---- Spans ------------------------------------------------------------

thread_local! {
    /// Names of the spans currently open on this thread, outermost first.
    static SPAN_STACK: std::cell::RefCell<Vec<&'static str>> =
        const { std::cell::RefCell::new(Vec::new()) };
}

/// Monotonic origin for trace timestamps.
pub(crate) fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

/// Whole seconds since the trace epoch (the [`SloWindow`] clock).
pub(crate) fn epoch_secs() -> u64 {
    epoch().elapsed().as_secs()
}

/// RAII timer: created by [`span!`], records its wall-clock duration
/// into the span's histogram (and the trace sink, if any) on drop.
pub struct SpanGuard {
    inner: Option<SpanInner>,
}

struct SpanInner {
    name: &'static str,
    hist: Arc<Histogram>,
    start: Instant,
    depth: usize,
}

impl SpanGuard {
    /// An inert guard: dropping it does nothing. Used when telemetry is off.
    #[inline]
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Opens a span feeding `hist`. Prefer the [`span!`] macro, which
    /// caches the histogram handle per call site.
    pub fn enter(name: &'static str, hist: Arc<Histogram>) -> Self {
        epoch(); // pin the trace origin before the first measurement
        let depth = SPAN_STACK.with(|s| {
            let mut s = s.borrow_mut();
            s.push(name);
            s.len() - 1
        });
        Self { inner: Some(SpanInner { name, hist, start: Instant::now(), depth }) }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else { return };
        let dur = inner.start.elapsed();
        let ns = dur.as_nanos().min(u64::MAX as u128) as u64;
        inner.hist.record(ns);
        trace::note_span(inner.name, ns);
        SPAN_STACK.with(|s| {
            s.borrow_mut().pop();
        });
        trace_event(json!({
            "type": "span",
            "name": inner.name,
            "dur_ns": ns,
            "depth": inner.depth,
            "ts_ns": (inner.start - epoch()).as_nanos().min(u64::MAX as u128) as u64,
        }));
        if level() == Level::Debug {
            eprintln!(
                "[obs] {:indent$}{} {:.3} ms",
                "",
                inner.name,
                ns as f64 / 1e6,
                indent = inner.depth * 2
            );
        }
    }
}

/// Current span nesting depth on this thread (0 = no open span).
pub fn span_depth() -> usize {
    SPAN_STACK.with(|s| s.borrow().len())
}

/// Opens a span by dynamic name (registry lookup per call). Use
/// [`span!`] for hot paths — it caches the histogram handle.
pub fn time(name: &'static str) -> SpanGuard {
    if enabled() {
        SpanGuard::enter(name, registry().histogram(name))
    } else {
        SpanGuard::disabled()
    }
}

/// Times the enclosing scope under a static span name.
///
/// Expands to a [`SpanGuard`] binding; the span closes when the guard
/// drops. When telemetry is off this is one atomic load.
///
/// ```
/// let _span = explainti_obs::span!("encoder.forward");
/// ```
#[macro_export]
macro_rules! span {
    ($name:literal) => {{
        if $crate::enabled() {
            static HIST: ::std::sync::OnceLock<::std::sync::Arc<$crate::Histogram>> =
                ::std::sync::OnceLock::new();
            $crate::SpanGuard::enter(
                $name,
                HIST.get_or_init(|| $crate::registry().histogram($name)).clone(),
            )
        } else {
            $crate::SpanGuard::disabled()
        }
    }};
}

/// Adds to a named counter (cached handle per call site; one atomic
/// load when telemetry is off).
#[macro_export]
macro_rules! counter {
    ($name:literal, $n:expr) => {{
        if $crate::enabled() {
            static CTR: ::std::sync::OnceLock<::std::sync::Arc<::std::sync::atomic::AtomicU64>> =
                ::std::sync::OnceLock::new();
            CTR.get_or_init(|| $crate::registry().counter($name))
                // ORDERING: Relaxed — counters are independent advisory
                // scalars; no cross-metric consistency is promised.
                .fetch_add($n as u64, ::std::sync::atomic::Ordering::Relaxed);
        }
    }};
}

// ---- Trace sink -------------------------------------------------------

/// Where JSONL trace events go; `None` (the default) drops them.
static SINK: OrderedMutex<Option<Box<dyn Write + Send>>> =
    OrderedMutex::new(&classes::OBS_SINK, None);
/// Cheap "is a sink attached" check so untraced runs skip serialisation.
static SINK_ATTACHED: AtomicUsize = AtomicUsize::new(0);

/// Routes trace events to a JSONL file (the `--trace-out` flag).
pub fn set_trace_file(path: &std::path::Path) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    set_trace_writer(Box::new(std::io::BufWriter::new(file)));
    Ok(())
}

/// Routes trace events to an arbitrary writer (tests use an in-memory one).
pub fn set_trace_writer(w: Box<dyn Write + Send>) {
    *SINK.lock() = Some(w);
    // ORDERING: Release — pairs with the Acquire loads in
    // `sink_attached`/`trace_event` so a thread that observes 1 also
    // observes the sink installed above (the mutex would synchronise
    // too, but the flag is read without it).
    SINK_ATTACHED.store(1, Ordering::Release);
}

/// Detaches and flushes the current trace sink, if any.
pub fn close_trace() {
    // ORDERING: Release — orders the detach before the take/flush below
    // for threads that skip the lock after loading 0 (see `trace_event`).
    SINK_ATTACHED.store(0, Ordering::Release);
    if let Some(mut w) = SINK.lock().take() {
        let _ = w.flush();
    }
}

/// Whether a JSONL sink is currently attached (one atomic load).
pub(crate) fn sink_attached() -> bool {
    // ORDERING: Acquire — pairs with the Release store in
    // `set_trace_writer`; observing 1 implies the sink is installed.
    SINK_ATTACHED.load(Ordering::Acquire) != 0
}

pub(crate) fn trace_event(event: Value) {
    // ORDERING: Acquire — pairs with `set_trace_writer`'s Release store;
    // a 1 here guarantees the boxed writer below is visible.
    if SINK_ATTACHED.load(Ordering::Acquire) == 0 {
        return;
    }
    if let Some(w) = SINK.lock().as_mut() {
        let line = serde_json::to_string(&event).unwrap_or_default();
        let _ = writeln!(w, "{line}");
    }
}

/// Emits a free-form event to the trace sink (no-op when untraced or off).
pub fn emit(event: Value) {
    if enabled() {
        trace_event(event);
    }
}

// ---- Reporting --------------------------------------------------------

fn fmt_ms(ns: u64) -> String {
    format!("{:.3}", ns as f64 / 1e6)
}

/// Human-readable end-of-run summary of every recorded metric.
pub fn report() -> String {
    let snap = registry().snapshot();
    let mut out = String::new();

    let mut spans =
        TextTable::new(["span", "count", "p50 ms", "p90 ms", "p99 ms", "max ms", "total ms"]);
    for (name, h) in &snap.histograms {
        if h.count() == 0 {
            continue;
        }
        spans.row([
            name.clone(),
            h.count().to_string(),
            fmt_ms(h.quantile(0.50)),
            fmt_ms(h.quantile(0.90)),
            fmt_ms(h.quantile(0.99)),
            fmt_ms(h.max()),
            fmt_ms(h.sum()),
        ]);
    }
    if !spans.is_empty() {
        out.push_str("spans\n");
        out.push_str(&spans.render());
    }

    let mut scalars = TextTable::new(["metric", "value"]);
    for (name, v) in &snap.counters {
        if *v != 0 {
            scalars.row([name.clone(), v.to_string()]);
        }
    }
    for (name, v) in &snap.gauges {
        scalars.row([name.clone(), format!("{v}")]);
    }
    if !scalars.is_empty() {
        if !out.is_empty() {
            out.push('\n');
        }
        out.push_str("counters & gauges\n");
        out.push_str(&scalars.render());
    }

    if out.is_empty() {
        out.push_str("no telemetry recorded\n");
    }
    out
}

/// Machine-readable snapshot of every recorded metric (BENCH files,
/// trace footers).
pub fn summary() -> Value {
    let snap = registry().snapshot();
    let mut histograms = BTreeMap::new();
    for (name, h) in &snap.histograms {
        if h.count() == 0 {
            continue;
        }
        histograms.insert(
            name.clone(),
            json!({
                "count": h.count(),
                "p50_ns": h.quantile(0.50),
                "p90_ns": h.quantile(0.90),
                "p99_ns": h.quantile(0.99),
                "min_ns": h.min(),
                "max_ns": h.max(),
                "sum_ns": h.sum(),
                "mean_ns": h.mean(),
            }),
        );
    }
    json!({
        "histograms": histograms,
        "counters": snap.counters,
        "gauges": snap.gauges,
    })
}
