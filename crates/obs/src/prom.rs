//! Prometheus text-exposition rendering of the metric registry.
//!
//! `GET /v1/metrics?format=prometheus` serves this next to the JSON
//! snapshot so standard scrapers ingest the same series the JSON
//! carries. Mapping:
//!
//! - counters → `counter`, gauges → `gauge`, verbatim values;
//! - histograms → `summary` with `quantile` labels 0.5/0.9/0.99/0.999
//!   plus `_sum` / `_count`, under a `_ns` suffix (span durations are
//!   nanoseconds by convention);
//! - dotted metric names sanitise `.` → `_` (registry names are
//!   `[a-z0-9_.]+`, so the result is a valid Prometheus identifier).

use std::fmt::Write as _;

/// `.`-separated registry name → Prometheus-legal identifier.
fn sanitize(name: &str) -> String {
    name.chars().map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' }).collect()
}

/// Renders the whole registry in Prometheus text exposition format.
/// Empty histograms are skipped (they would render misleading zeros);
/// counters and gauges always render.
pub fn prometheus() -> String {
    let snap = crate::registry().snapshot();
    let mut out = String::new();
    for (name, v) in &snap.counters {
        let n = sanitize(name);
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {v}");
    }
    for (name, v) in &snap.gauges {
        let n = sanitize(name);
        let _ = writeln!(out, "# TYPE {n} gauge");
        let _ = writeln!(out, "{n} {v}");
    }
    for (name, h) in &snap.histograms {
        if h.count() == 0 {
            continue;
        }
        let n = format!("{}_ns", sanitize(name));
        let _ = writeln!(out, "# TYPE {n} summary");
        for (q, label) in [(0.50, "0.5"), (0.90, "0.9"), (0.99, "0.99"), (0.999, "0.999")] {
            let _ = writeln!(out, "{n}{{quantile=\"{label}\"}} {}", h.quantile(q));
        }
        let _ = writeln!(out, "{n}_sum {}", h.sum());
        let _ = writeln!(out, "{n}_count {}", h.count());
    }
    out
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // tests may panic freely
mod tests {
    use super::*;

    /// Minimal line-format validator: every line is either a `# TYPE`
    /// comment or `name[{labels}] value` with a legal metric name and a
    /// numeric value.
    fn assert_exposition_parses(text: &str) {
        fn name_ok(name: &str) -> bool {
            !name.is_empty()
                && name
                    .chars()
                    .next()
                    .is_some_and(|c| c.is_ascii_alphabetic() || c == '_' || c == ':')
                && name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
        }
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let mut parts = rest.split_whitespace();
                let name = parts.next().unwrap_or("");
                let kind = parts.next().unwrap_or("");
                assert!(name_ok(name), "bad TYPE name in {line:?}");
                assert!(
                    matches!(kind, "counter" | "gauge" | "summary" | "histogram" | "untyped"),
                    "bad TYPE kind in {line:?}"
                );
                assert!(parts.next().is_none(), "trailing tokens in {line:?}");
                continue;
            }
            let (series, value) = line.rsplit_once(' ').unwrap_or(("", ""));
            assert!(value.parse::<f64>().is_ok(), "non-numeric value in {line:?}");
            let name = match series.split_once('{') {
                Some((n, labels)) => {
                    assert!(labels.ends_with('}'), "unterminated labels in {line:?}");
                    let body = &labels[..labels.len() - 1];
                    for pair in body.split(',') {
                        let (k, v) = pair.split_once('=').unwrap_or(("", ""));
                        assert!(name_ok(k), "bad label name in {line:?}");
                        assert!(
                            v.starts_with('"') && v.ends_with('"') && v.len() >= 2,
                            "unquoted label value in {line:?}"
                        );
                    }
                    n
                }
                None => series,
            };
            assert!(name_ok(name), "bad series name in {line:?}");
        }
    }

    #[test]
    fn renders_counters_gauges_and_summaries_that_parse() {
        crate::set_level(crate::Level::Info);
        crate::add_counter("promtest.hits", 3);
        crate::set_gauge("promtest.depth", 2.5);
        let h = crate::registry().histogram("promtest.latency");
        for i in 1..=100u64 {
            h.record(i * 1_000);
        }
        let text = prometheus();
        assert_exposition_parses(&text);
        assert!(text.contains("# TYPE promtest_hits counter"));
        assert!(text.contains("promtest_hits 3"));
        assert!(text.contains("# TYPE promtest_depth gauge"));
        assert!(text.contains("promtest_depth 2.5"));
        assert!(text.contains("# TYPE promtest_latency_ns summary"));
        assert!(text.contains("promtest_latency_ns{quantile=\"0.999\"}"));
        assert!(text.contains("promtest_latency_ns_count 100"));
    }

    #[test]
    fn dotted_names_sanitise_to_legal_identifiers() {
        assert_eq!(sanitize("serve.slo.p99_ms"), "serve_slo_p99_ms");
        assert_eq!(sanitize("faults.hit.serve.batch.slow"), "faults_hit_serve_batch_slow");
    }
}
