//! Lock-free log-linear histogram for latency distributions.
//!
//! Values (span durations in nanoseconds) land in buckets arranged as
//! powers of two subdivided into 16 linear sub-buckets, the same layout
//! HdrHistogram popularised: relative quantile error is bounded by the
//! sub-bucket width (≤ ~6%) at every magnitude, and recording is a
//! single atomic increment with no allocation.

use std::sync::atomic::{AtomicU64, Ordering};

/// log2 of the number of linear sub-buckets per power of two.
const SUB_BITS: u32 = 4;
const SUB: usize = 1 << SUB_BITS;
/// Majors 1..=60 cover values from 2^4 up to u64::MAX; major 0 holds
/// the exact small values 0..15.
const BUCKETS: usize = (64 - SUB_BITS as usize + 1) * SUB;

/// A concurrent histogram of `u64` samples (nanoseconds by convention).
pub struct Histogram {
    counts: Box<[AtomicU64; BUCKETS]>,
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        // [AtomicU64; N] has no Copy init, so build via Vec and convert.
        let counts: Vec<AtomicU64> = (0..BUCKETS).map(|_| AtomicU64::new(0)).collect();
        let counts: Box<[AtomicU64; BUCKETS]> = match counts.into_boxed_slice().try_into() {
            Ok(b) => b,
            Err(_) => unreachable!("bucket count is fixed"),
        };
        Self {
            counts,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }

    /// Bucket index for `v`: exact below 16, log-linear above.
    fn index(v: u64) -> usize {
        if v < SUB as u64 {
            v as usize
        } else {
            let msb = 63 - v.leading_zeros();
            let major = (msb - SUB_BITS + 1) as usize;
            let sub = ((v >> (msb - SUB_BITS)) & (SUB as u64 - 1)) as usize;
            major * SUB + sub
        }
    }

    /// Representative value (bucket midpoint) for bucket `idx`.
    fn value_of(idx: usize) -> u64 {
        if idx < SUB {
            idx as u64
        } else {
            let major = (idx / SUB) as u32;
            let sub = (idx % SUB) as u64;
            let msb = major + SUB_BITS - 1;
            let low = (1u64 << msb) | (sub << (msb - SUB_BITS));
            let width = 1u64 << (msb - SUB_BITS);
            low + width / 2
        }
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        // ORDERING: Relaxed — every histogram cell is an independent
        // statistical counter; readers merge torn-in-time snapshots by
        // design, so no happens-before edge is needed anywhere here.
        self.counts[Self::index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed); // ORDERING: Relaxed — as above
        self.sum.fetch_add(v, Ordering::Relaxed); // ORDERING: Relaxed — as above
        self.min.fetch_min(v, Ordering::Relaxed); // ORDERING: Relaxed — as above
        self.max.fetch_max(v, Ordering::Relaxed); // ORDERING: Relaxed — as above
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        // ORDERING: Relaxed — advisory read of an independent cell.
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples (saturating only at u64 wrap, ~584 years of ns).
    pub fn sum(&self) -> u64 {
        // ORDERING: Relaxed — advisory read of an independent cell.
        self.sum.load(Ordering::Relaxed)
    }

    /// Smallest recorded sample (0 when empty).
    pub fn min(&self) -> u64 {
        // ORDERING: Relaxed — advisory read of an independent cell.
        let m = self.min.load(Ordering::Relaxed);
        if m == u64::MAX {
            0
        } else {
            m
        }
    }

    /// Largest recorded sample (0 when empty).
    pub fn max(&self) -> u64 {
        // ORDERING: Relaxed — advisory read of an independent cell.
        self.max.load(Ordering::Relaxed)
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> u64 {
        self.sum().checked_div(self.count()).unwrap_or(0)
    }

    /// The `q`-quantile (`0.0..=1.0`) as a bucket-midpoint estimate,
    /// clamped into `[min, max]`. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (idx, c) in self.counts.iter().enumerate() {
            // ORDERING: Relaxed — quantiles are estimates over a moving
            // population; bucket-wise tearing is within the error model.
            seen += c.load(Ordering::Relaxed);
            if seen >= target {
                return Self::value_of(idx).clamp(self.min(), self.max());
            }
        }
        self.max()
    }

    /// Adds every bucket and aggregate of `src` into `self` — the merge
    /// primitive behind sliding-window quantiles ([`crate::SloWindow`]).
    /// Concurrent recording into either side stays consistent bucket-wise
    /// (each bucket is an independent atomic add).
    pub fn merge_from(&self, src: &Histogram) {
        // ORDERING: Relaxed — merge is bucket-wise additive and tolerant
        // of concurrent recording on either side (each cell independent);
        // the same contract covers every load/add/min/max below.
        let n = src.count.load(Ordering::Relaxed);
        if n == 0 {
            return;
        }
        for (dst, s) in self.counts.iter().zip(src.counts.iter()) {
            let c = s.load(Ordering::Relaxed); // ORDERING: Relaxed — as above
            if c != 0 {
                dst.fetch_add(c, Ordering::Relaxed); // ORDERING: Relaxed — as above
            }
        }
        self.count.fetch_add(n, Ordering::Relaxed); // ORDERING: Relaxed — as above
                                                    // ORDERING: Relaxed — as above
        self.sum.fetch_add(src.sum.load(Ordering::Relaxed), Ordering::Relaxed);
        // ORDERING: Relaxed — as above
        self.min.fetch_min(src.min.load(Ordering::Relaxed), Ordering::Relaxed);
        // ORDERING: Relaxed — as above
        self.max.fetch_max(src.max.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Zeroes all buckets and aggregates in place.
    pub fn reset(&self) {
        // ORDERING: Relaxed — in-place zeroing of independent advisory
        // cells; concurrent recorders may interleave, by design.
        for c in self.counts.iter() {
            c.store(0, Ordering::Relaxed); // ORDERING: Relaxed — as above
        }
        self.count.store(0, Ordering::Relaxed); // ORDERING: Relaxed — as above
        self.sum.store(0, Ordering::Relaxed); // ORDERING: Relaxed — as above
        self.min.store(u64::MAX, Ordering::Relaxed); // ORDERING: Relaxed — as above
        self.max.store(0, Ordering::Relaxed); // ORDERING: Relaxed — as above
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indexes_are_monotonic_and_in_range() {
        let mut prev = 0usize;
        for shift in 0..64u32 {
            let v = 1u64 << shift;
            for delta in [0u64, 1, (1u64 << shift) >> 1] {
                let idx = Histogram::index(v.saturating_add(delta));
                assert!(idx < BUCKETS, "idx {idx} for value {}", v.saturating_add(delta));
                assert!(idx >= prev || idx == Histogram::index(v), "non-monotonic at {v}");
            }
            prev = Histogram::index(v);
        }
        assert!(Histogram::index(u64::MAX) < BUCKETS);
    }

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        for v in 0..16u64 {
            // Quantiles over the 16 exact buckets return exact values.
            let q = (v as f64 + 1.0) / 16.0;
            assert_eq!(h.quantile(q), v);
        }
    }

    #[test]
    fn bucket_midpoint_is_within_relative_error() {
        for v in [100u64, 1_000, 123_456, 7_000_000, u32::MAX as u64 * 3] {
            let rep = Histogram::value_of(Histogram::index(v));
            let err = (rep as f64 - v as f64).abs() / v as f64;
            assert!(err < 0.07, "value {v} rep {rep} err {err}");
        }
    }

    #[test]
    fn merge_combines_buckets_and_aggregates() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [10u64, 20, 30] {
            a.record(v);
        }
        for v in [5u64, 1_000_000] {
            b.record(v);
        }
        a.merge_from(&b);
        assert_eq!(a.count(), 5);
        assert_eq!(a.sum(), 10 + 20 + 30 + 5 + 1_000_000);
        assert_eq!(a.min(), 5);
        assert_eq!(a.max(), 1_000_000);
        // Merging an empty histogram changes nothing (incl. min).
        a.merge_from(&Histogram::new());
        assert_eq!(a.count(), 5);
        assert_eq!(a.min(), 5);
    }

    #[test]
    fn empty_histogram_reports_zeros() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.quantile(0.5), 0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.mean(), 0);
    }
}
