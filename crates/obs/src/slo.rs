//! Sliding-window SLO tracking: rolling latency quantiles + error rate.
//!
//! A [`SloWindow`] is a ring of per-second slots, each holding a
//! [`Histogram`] and an error count. Recording touches only the current
//! second's slot; a snapshot merges the slots that fall inside the
//! window into rolling p50/p99/p999 and an error rate, which the server
//! publishes as `serve.slo.*` gauges. Slots are lazily recycled — a
//! stale slot (older than the window) is reset the next time its ring
//! position comes around — so the structure is O(window) memory with no
//! background thread.
//!
//! Timestamps are seconds since the obs epoch (first instrumentation
//! point), injectable via [`record_at`](SloWindow::record_at) /
//! [`snapshot_at`](SloWindow::snapshot_at) so tests are deterministic.

use explainti_sync::{classes, OrderedMutex};

use crate::histogram::Histogram;

struct Slot {
    /// Epoch second this slot currently holds (valid when `live`).
    sec: u64,
    live: bool,
    errors: u64,
    hist: Histogram,
}

/// Rolling latency/error tracker over the last `window_s` seconds.
pub struct SloWindow {
    window_s: u64,
    slots: OrderedMutex<Vec<Slot>>,
}

/// One merged view of a [`SloWindow`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloSnapshot {
    /// Window length in seconds.
    pub window_s: u64,
    /// Requests observed inside the window.
    pub count: u64,
    /// Errors observed inside the window.
    pub errors: u64,
    /// `errors / count` (0 when the window is empty).
    pub error_rate: f64,
    /// Rolling median latency, nanoseconds.
    pub p50_ns: u64,
    /// Rolling 99th-percentile latency, nanoseconds.
    pub p99_ns: u64,
    /// Rolling 99.9th-percentile latency, nanoseconds.
    pub p999_ns: u64,
    /// Largest latency inside the window, nanoseconds.
    pub max_ns: u64,
}

impl SloWindow {
    /// A window covering the trailing `window_s` seconds (≥ 1).
    pub fn new(window_s: u64) -> Self {
        let window_s = window_s.max(1);
        let slots = (0..window_s)
            .map(|_| Slot { sec: 0, live: false, errors: 0, hist: Histogram::new() })
            .collect();
        Self { window_s, slots: OrderedMutex::new(&classes::OBS_SLO_WINDOW, slots) }
    }

    /// The configured window length in seconds.
    pub fn window_s(&self) -> u64 {
        self.window_s
    }

    /// Records one request outcome at the current epoch second.
    pub fn record(&self, latency_ns: u64, error: bool) {
        self.record_at(crate::epoch_secs(), latency_ns, error);
    }

    /// Records one request outcome at an explicit epoch second (tests).
    pub fn record_at(&self, sec: u64, latency_ns: u64, error: bool) {
        let mut slots = self.slots.lock();
        let idx = (sec % self.window_s) as usize;
        let Some(slot) = slots.get_mut(idx) else { return };
        if !slot.live || slot.sec != sec {
            slot.sec = sec;
            slot.live = true;
            slot.errors = 0;
            slot.hist.reset();
        }
        slot.hist.record(latency_ns);
        if error {
            slot.errors += 1;
        }
    }

    /// Merged rolling view as of the current epoch second.
    pub fn snapshot(&self) -> SloSnapshot {
        self.snapshot_at(crate::epoch_secs())
    }

    /// Merged rolling view as of an explicit epoch second (tests).
    pub fn snapshot_at(&self, now_sec: u64) -> SloSnapshot {
        let merged = Histogram::new();
        let mut errors = 0u64;
        {
            let slots = self.slots.lock();
            for slot in slots.iter() {
                // A slot counts when it holds a second inside
                // (now - window, now]; anything else is stale or future.
                if slot.live && slot.sec <= now_sec && now_sec - slot.sec < self.window_s {
                    merged.merge_from(&slot.hist);
                    errors += slot.errors;
                }
            }
        }
        let count = merged.count();
        SloSnapshot {
            window_s: self.window_s,
            count,
            errors,
            error_rate: if count > 0 { errors as f64 / count as f64 } else { 0.0 },
            p50_ns: merged.quantile(0.50),
            p99_ns: merged.quantile(0.99),
            p999_ns: merged.quantile(0.999),
            max_ns: merged.max(),
        }
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)] // tests may panic freely
mod tests {
    use super::*;

    #[test]
    fn empty_window_reports_zeros() {
        let w = SloWindow::new(10);
        let s = w.snapshot_at(100);
        assert_eq!(s.count, 0);
        assert_eq!(s.errors, 0);
        assert_eq!(s.error_rate, 0.0);
        assert_eq!(s.p50_ns, 0);
        assert_eq!(s.p999_ns, 0);
    }

    #[test]
    fn rolls_quantiles_and_error_rate_over_the_window() {
        let w = SloWindow::new(5);
        for sec in 0..5u64 {
            for i in 0..20u64 {
                w.record_at(sec, 1_000 * (i + 1), i == 0 && sec == 2);
            }
        }
        let s = w.snapshot_at(4);
        assert_eq!(s.count, 100);
        assert_eq!(s.errors, 1);
        assert!((s.error_rate - 0.01).abs() < 1e-9);
        // Median of 20×{1k..20k} repeated: ~10k, within bucket error.
        assert!(s.p50_ns >= 9_000 && s.p50_ns <= 11_000, "p50 {}", s.p50_ns);
        assert!(s.p99_ns >= 18_000, "p99 {}", s.p99_ns);
        assert!(s.p999_ns >= s.p99_ns);
        assert_eq!(s.max_ns, 20_000);
    }

    #[test]
    fn old_seconds_age_out() {
        let w = SloWindow::new(3);
        w.record_at(0, 1_000_000, true); // will age out
        w.record_at(5, 2_000, false);
        let s = w.snapshot_at(5);
        assert_eq!(s.count, 1);
        assert_eq!(s.errors, 0);
        assert_eq!(s.max_ns, 2_000);
        // The stale slot is recycled when its ring position returns.
        w.record_at(6, 3_000, false);
        let s = w.snapshot_at(6);
        assert_eq!(s.count, 2);
    }

    #[test]
    fn slot_reuse_resets_previous_contents() {
        let w = SloWindow::new(2);
        w.record_at(0, 10_000, true);
        w.record_at(2, 500, false); // same ring index as sec 0
        let s = w.snapshot_at(2);
        assert_eq!(s.count, 1);
        assert_eq!(s.errors, 0);
        assert_eq!(s.max_ns, 500);
    }

    #[test]
    fn p999_tracks_the_tail() {
        let w = SloWindow::new(60);
        // 5 of 2000 samples (0.25%) sit at 5 ms: the p999 rank (1998)
        // lands inside the tail, the median nowhere near it.
        for i in 0..2_000u64 {
            w.record_at(i % 60, if i >= 1_995 { 5_000_000 } else { 10_000 }, false);
        }
        let s = w.snapshot_at(59);
        assert_eq!(s.count, 2_000);
        assert!(s.p999_ns >= 4_000_000, "p999 {} missed the tail", s.p999_ns);
        assert!(s.p50_ns < 20_000);
    }
}
