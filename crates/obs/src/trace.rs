//! Request-scoped tracing: trace ids, span capture, and wide events.
//!
//! Three cooperating pieces turn the per-span JSONL stream into
//! *per-request* observability:
//!
//! - [`TraceId`] — a deterministic 64-bit id minted per request from a
//!   seeded SplitMix64 sequence (`EXPLAINTI_TRACE_SEED` /
//!   [`set_trace_seed`]), so test runs produce reproducible ids and the
//!   sequence never collides (SplitMix64 is a bijection).
//! - [`SpanCapture`] — a shareable accumulator of span durations. While
//!   installed on a thread (RAII guard), every closing [`span!`](crate::span!)
//!   adds its duration under its name. The kernel thread pool re-installs
//!   the submitting thread's capture around each task, so spans fired on
//!   pool workers (`explain.le`, `model.forward`, …) attribute to the
//!   request that submitted the batch rather than vanishing into
//!   whichever thread ran them.
//! - [`RequestTrace`] — the wide-event builder: one JSONL record per
//!   request carrying the trace id, status, and a canonical per-stage
//!   duration map ([`STAGES`]) that mirrors the paper's Table V
//!   stage breakdown.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use explainti_sync::{classes, OrderedMutex};
use std::time::Instant;

use serde_json::{json, Value};

// ---- Trace ids --------------------------------------------------------

/// The canonical wide-event stage names, in pipeline order. Each maps
/// onto a column of the paper's Table V latency breakdown (parse and
/// serialize are the HTTP framing the paper folds into "overhead";
/// `predict` is the encoder forward net of the three explanation views).
pub const STAGES: [&str; 9] = [
    "parse",
    "queue_wait",
    "batch_assembly",
    "encode",
    "predict",
    "explain_le",
    "explain_ge",
    "explain_se",
    "serialize",
];

/// Default id-sequence seed when `EXPLAINTI_TRACE_SEED` is unset.
const DEFAULT_TRACE_SEED: u64 = 0x7ab1_e5ee_d000_0001;

/// A per-request trace identifier, rendered as 16 lowercase hex digits
/// (the `X-Trace-Id` header / `trace_id` JSONL field).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceId(u64);

impl TraceId {
    /// The raw 64-bit id.
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// SplitMix64 finaliser: a bijection on u64, so distinct counter values
/// yield distinct ids for any seed.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn seed_cell() -> &'static AtomicU64 {
    static CELL: OnceLock<AtomicU64> = OnceLock::new();
    CELL.get_or_init(|| {
        let seed = std::env::var("EXPLAINTI_TRACE_SEED")
            .ok()
            .and_then(|s| s.trim().parse().ok())
            .unwrap_or(DEFAULT_TRACE_SEED);
        AtomicU64::new(seed)
    })
}

static TRACE_COUNTER: AtomicU64 = AtomicU64::new(0);

/// Overrides the trace-id seed and restarts the sequence (tests; the
/// `EXPLAINTI_TRACE_SEED` env var covers whole processes).
pub fn set_trace_seed(seed: u64) {
    // ORDERING: Relaxed — seed and counter are test-sequencing state;
    // callers serialise reseeding externally, so no edge is needed.
    seed_cell().store(seed, Ordering::Relaxed);
    // ORDERING: Relaxed — same external-serialisation contract.
    TRACE_COUNTER.store(0, Ordering::Relaxed);
}

/// Mints the next trace id: deterministic for a fixed seed, unique for
/// the life of the process (the counter never repeats).
pub fn next_trace_id() -> TraceId {
    // ORDERING: Relaxed — uniqueness needs only atomicity of the
    // increment; ids carry no payload to synchronise.
    let n = TRACE_COUNTER.fetch_add(1, Ordering::Relaxed);
    // ORDERING: Relaxed — see set_trace_seed; reseeds are externally
    // serialised.
    let seed = seed_cell().load(Ordering::Relaxed);
    TraceId(splitmix64(seed.wrapping_add(n.wrapping_mul(0x9e37_79b9_7f4a_7c15))))
}

// ---- Span capture -----------------------------------------------------

type StageSums = BTreeMap<&'static str, u64>;

/// A shareable accumulator of closed-span durations, keyed by span name.
///
/// Install it on a thread with [`SpanCapture::install`]; while the
/// returned guard lives, every span closing on that thread adds its
/// duration here. Clones share the same accumulator, which is how the
/// thread pool extends one request's capture across kernel workers.
#[derive(Clone)]
pub struct SpanCapture {
    sums: Arc<OrderedMutex<StageSums>>,
}

impl Default for SpanCapture {
    fn default() -> Self {
        Self { sums: Arc::new(OrderedMutex::new(&classes::OBS_TRACE_SUMS, StageSums::new())) }
    }
}

impl SpanCapture {
    /// An empty capture.
    pub fn new() -> Self {
        Self::default()
    }

    /// Installs this capture as the thread's active one until the guard
    /// drops (the previous capture, if any, is restored — captures nest).
    pub fn install(&self) -> CaptureGuard {
        let prev = ACTIVE_CAPTURE.with(|c| c.borrow_mut().replace(self.clone()));
        CaptureGuard { prev }
    }

    /// Snapshot of the accumulated `span name → total ns` map.
    pub fn sums(&self) -> StageSums {
        self.sums.lock().clone()
    }

    /// Total nanoseconds accumulated under `name` (0 when unseen).
    pub fn get(&self, name: &str) -> u64 {
        self.sums.lock().get(name).copied().unwrap_or(0)
    }
}

/// Restores the previously active capture when dropped.
pub struct CaptureGuard {
    prev: Option<SpanCapture>,
}

impl Drop for CaptureGuard {
    fn drop(&mut self) {
        let prev = self.prev.take();
        ACTIVE_CAPTURE.with(|c| *c.borrow_mut() = prev);
    }
}

thread_local! {
    /// The capture currently receiving this thread's span closes.
    static ACTIVE_CAPTURE: RefCell<Option<SpanCapture>> = const { RefCell::new(None) };
}

/// The thread's active capture, if any — the thread pool snapshots this
/// at job submission and re-installs it around each task.
pub fn current_capture() -> Option<SpanCapture> {
    ACTIVE_CAPTURE.with(|c| c.borrow().clone())
}

/// Feeds one closed span into the active capture (called by
/// `SpanGuard::drop`; a no-op when no capture is installed).
pub(crate) fn note_span(name: &'static str, ns: u64) {
    ACTIVE_CAPTURE.with(|c| {
        if let Some(cap) = c.borrow().as_ref() {
            *cap.sums.lock().entry(name).or_insert(0) += ns;
        }
    });
}

// ---- Wide events ------------------------------------------------------

/// Builder for one request's wide event: a single JSONL record carrying
/// the trace id, endpoint, status, and the canonical [`STAGES`] duration
/// map. Create it when the connection is accepted, feed it as the
/// request moves through the pipeline, and [`finish`](Self::finish) it
/// after the response is written.
pub struct RequestTrace {
    id: TraceId,
    start: Instant,
    endpoint: &'static str,
    status: u16,
    cache_hits: u64,
    columns: u64,
    batch_size_max: u64,
    stages: StageSums,
}

impl RequestTrace {
    /// Starts the request clock under `id`.
    pub fn new(id: TraceId) -> Self {
        crate::epoch(); // pin the trace origin before the first measurement
        Self {
            id,
            start: Instant::now(),
            endpoint: "",
            status: 0,
            cache_hits: 0,
            columns: 0,
            batch_size_max: 0,
            stages: StageSums::new(),
        }
    }

    /// This request's trace id.
    pub fn id(&self) -> TraceId {
        self.id
    }

    /// Names the logical endpoint (`interpret`, `healthz`, …).
    pub fn set_endpoint(&mut self, endpoint: &'static str) {
        self.endpoint = endpoint;
    }

    /// Records the HTTP status the response carried.
    pub fn set_status(&mut self, status: u16) {
        self.status = status;
    }

    /// Adds `ns` under `stage` (accumulates across calls, so split
    /// measurements — e.g. header read + body parse — merge into one
    /// stage field).
    pub fn add_stage(&mut self, stage: &'static str, ns: u64) {
        debug_assert!(STAGES.contains(&stage), "unknown wide-event stage {stage}");
        *self.stages.entry(stage).or_insert(0) += ns;
    }

    /// Counts one response served from the LRU cache.
    pub fn note_cache_hit(&mut self) {
        self.cache_hits += 1;
    }

    /// Counts one column submitted for this request.
    pub fn note_column(&mut self) {
        self.columns += 1;
    }

    /// Records the size of a micro-batch this request rode in (the wide
    /// event keeps the maximum across its columns).
    pub fn note_batch(&mut self, size: u64) {
        self.batch_size_max = self.batch_size_max.max(size);
    }

    /// Nanoseconds since the request clock started.
    pub fn elapsed_ns(&self) -> u64 {
        self.start.elapsed().as_nanos().min(u64::MAX as u128) as u64
    }

    /// Emits the wide event to the trace sink (all [`STAGES`] keys
    /// present, unmeasured ones zero) and returns the request's total
    /// nanoseconds. Counts `trace.emitted` / `trace.dropped` so sink
    /// health is visible in `/v1/metrics`.
    pub fn finish(self) -> u64 {
        let total_ns = self.elapsed_ns();
        if !crate::enabled() {
            return total_ns;
        }
        if crate::sink_attached() {
            let mut stages = BTreeMap::new();
            for stage in STAGES {
                let ns = self.stages.get(stage).copied().unwrap_or(0);
                stages.insert(stage.to_string(), json!(ns));
            }
            crate::trace_event(json!({
                "type": "wide",
                "trace_id": self.id.to_string(),
                "endpoint": self.endpoint,
                "status": self.status,
                "total_ns": total_ns,
                "cache_hits": self.cache_hits,
                "columns": self.columns,
                "batch_size_max": self.batch_size_max,
                "stages": Value::Object(stages),
            }));
            crate::add_counter("trace.emitted", 1);
        } else {
            crate::add_counter("trace.dropped", 1);
        }
        total_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_ids_are_deterministic_per_seed() {
        set_trace_seed(42);
        let a: Vec<u64> = (0..8).map(|_| next_trace_id().as_u64()).collect();
        set_trace_seed(42);
        let b: Vec<u64> = (0..8).map(|_| next_trace_id().as_u64()).collect();
        assert_eq!(a, b);
        set_trace_seed(43);
        let c: Vec<u64> = (0..8).map(|_| next_trace_id().as_u64()).collect();
        assert_ne!(a, c);
    }

    #[test]
    fn trace_ids_are_unique_and_hex_formatted() {
        set_trace_seed(7);
        let mut seen = std::collections::BTreeSet::new();
        for _ in 0..10_000 {
            let id = next_trace_id();
            assert!(seen.insert(id.as_u64()), "duplicate id {id}");
        }
        let rendered = next_trace_id().to_string();
        assert_eq!(rendered.len(), 16);
        assert!(rendered.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn capture_accumulates_only_while_installed() {
        let cap = SpanCapture::new();
        note_span("outside", 5);
        {
            let _g = cap.install();
            note_span("stage.a", 10);
            note_span("stage.a", 7);
            note_span("stage.b", 3);
        }
        note_span("stage.a", 100);
        assert_eq!(cap.get("stage.a"), 17);
        assert_eq!(cap.get("stage.b"), 3);
        assert_eq!(cap.get("outside"), 0);
    }

    #[test]
    fn captures_nest_and_restore() {
        let outer = SpanCapture::new();
        let inner = SpanCapture::new();
        let _a = outer.install();
        {
            let _b = inner.install();
            note_span("x", 1);
        }
        note_span("x", 2);
        assert_eq!(inner.get("x"), 1);
        assert_eq!(outer.get("x"), 2);
    }

    #[test]
    fn capture_clones_share_one_accumulator_across_threads() {
        let cap = SpanCapture::new();
        let clone = cap.clone();
        let t = std::thread::spawn(move || {
            let _g = clone.install();
            note_span("cross", 11);
        });
        t.join().expect("capture thread");
        assert_eq!(cap.get("cross"), 11);
    }
}
