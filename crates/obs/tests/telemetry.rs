//! Behavioural tests for the telemetry crate.
//!
//! Telemetry state is process-global, so every test that touches the
//! registry, level, or trace sink serialises on one mutex and resets
//! state on entry.

use std::io::Write;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex, MutexGuard, OnceLock};
use std::time::Duration;

use explainti_obs as obs;
use obs::{Histogram, Level};

fn lock() -> MutexGuard<'static, ()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = match GATE.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    obs::registry().reset();
    obs::close_trace();
    obs::set_level(Level::Info);
    guard
}

/// Histogram quantiles agree with a sorted-vector oracle to within the
/// log-linear bucket resolution (~6% relative error).
#[test]
fn histogram_quantiles_match_sorted_oracle() {
    let h = Histogram::new();
    // Mixed magnitudes: small exact values, mid-range, and large tails,
    // generated deterministically.
    let mut samples: Vec<u64> = Vec::new();
    let mut x = 0x2545_f491_4f6c_dd1du64;
    for _ in 0..10_000 {
        // xorshift64* — spread over ~3 orders of magnitude
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        let v = (x.wrapping_mul(0x2545_f491_4f6c_dd1d) >> 40) % 1_000_000;
        samples.push(v);
        h.record(v);
    }
    samples.sort_unstable();
    for q in [0.10, 0.50, 0.90, 0.99] {
        let oracle =
            samples[((q * samples.len() as f64).ceil() as usize - 1).min(samples.len() - 1)];
        let est = h.quantile(q);
        let tolerance = (oracle as f64 * 0.07).max(1.0);
        assert!(
            (est as f64 - oracle as f64).abs() <= tolerance,
            "q{q}: est {est} vs oracle {oracle}"
        );
    }
    assert_eq!(h.count(), 10_000);
    assert_eq!(h.min(), *samples.first().unwrap());
    assert_eq!(h.max(), *samples.last().unwrap());
}

/// Concurrent counter increments from many threads are all observed.
#[test]
fn concurrent_counter_increments_are_lossless() {
    let _gate = lock();
    const THREADS: usize = 8;
    const PER_THREAD: u64 = 10_000;
    let counter = obs::registry().counter("test.concurrent");
    let handles: Vec<_> = (0..THREADS)
        .map(|_| {
            let c = counter.clone();
            std::thread::spawn(move || {
                for _ in 0..PER_THREAD {
                    c.fetch_add(1, Ordering::Relaxed);
                }
            })
        })
        .collect();
    for t in handles {
        t.join().unwrap();
    }
    assert_eq!(counter.load(Ordering::Relaxed), THREADS as u64 * PER_THREAD);
}

/// Concurrent histogram recording loses no samples either.
#[test]
fn concurrent_histogram_records_are_lossless() {
    let h = Arc::new(Histogram::new());
    let handles: Vec<_> = (0..4)
        .map(|t| {
            let h = h.clone();
            std::thread::spawn(move || {
                for i in 0..5_000u64 {
                    h.record(t * 1_000 + i);
                }
            })
        })
        .collect();
    for t in handles {
        t.join().unwrap();
    }
    assert_eq!(h.count(), 20_000);
}

/// Nested spans report correct depth and unwind as guards drop.
#[test]
fn span_nesting_depth_tracks_guards() {
    let _gate = lock();
    assert_eq!(obs::span_depth(), 0);
    {
        let _outer = obs::span!("test.outer");
        assert_eq!(obs::span_depth(), 1);
        {
            let _mid = obs::span!("test.mid");
            assert_eq!(obs::span_depth(), 2);
            let _inner = obs::span!("test.inner");
            assert_eq!(obs::span_depth(), 3);
        }
        assert_eq!(obs::span_depth(), 1);
    }
    assert_eq!(obs::span_depth(), 0);
    for name in ["test.outer", "test.mid", "test.inner"] {
        assert_eq!(obs::registry().histogram(name).count(), 1, "{name}");
    }
}

/// A shared in-memory sink for trace assertions.
#[derive(Clone, Default)]
struct MemSink(Arc<Mutex<Vec<u8>>>);

impl Write for MemSink {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }
    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

/// Trace events round-trip through the JSONL sink: one valid JSON
/// object per line, carrying span name, duration, and depth.
#[test]
fn jsonl_trace_round_trips() {
    let _gate = lock();
    let sink = MemSink::default();
    obs::set_trace_writer(Box::new(sink.clone()));
    {
        let _outer = obs::span!("test.trace.outer");
        let _inner = obs::span!("test.trace.inner");
        std::thread::sleep(Duration::from_millis(1));
    }
    obs::emit(serde_json::json!({ "type": "note", "detail": "done" }));
    obs::close_trace();

    let bytes = sink.0.lock().unwrap().clone();
    let text = String::from_utf8(bytes).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert_eq!(lines.len(), 3, "trace:\n{text}");
    let events: Vec<serde_json::Value> =
        lines.iter().map(|l| serde_json::from_str(l).unwrap()).collect();

    // Inner span closes first.
    assert_eq!(events[0]["name"].as_str(), Some("test.trace.inner"));
    assert_eq!(events[0]["depth"].as_u64(), Some(1));
    assert_eq!(events[1]["name"].as_str(), Some("test.trace.outer"));
    assert_eq!(events[1]["depth"].as_u64(), Some(0));
    assert!(events[1]["dur_ns"].as_u64().unwrap() >= events[0]["dur_ns"].as_u64().unwrap());
    assert!(events[0]["dur_ns"].as_u64().unwrap() >= 1_000_000, "inner span slept 1ms");
    assert_eq!(events[2]["type"].as_str(), Some("note"));
}

/// With EXPLAINTI_LOG=off semantics, no metrics or trace events are
/// recorded and guards are inert.
#[test]
fn disabled_level_records_nothing() {
    let _gate = lock();
    let sink = MemSink::default();
    obs::set_trace_writer(Box::new(sink.clone()));
    obs::set_level(Level::Off);

    {
        let _span = obs::span!("test.disabled.span");
        obs::counter!("test.disabled.counter", 5);
        obs::add_counter("test.disabled.counter2", 7);
        obs::set_gauge("test.disabled.gauge", 1.5);
        obs::emit(serde_json::json!({ "type": "should-not-appear" }));
        assert_eq!(obs::span_depth(), 0, "disabled spans do not join the stack");
    }

    obs::set_level(Level::Info);
    obs::close_trace();
    assert_eq!(obs::registry().histogram("test.disabled.span").count(), 0);
    assert_eq!(obs::registry().counter("test.disabled.counter").load(Ordering::Relaxed), 0);
    assert_eq!(obs::registry().counter("test.disabled.counter2").load(Ordering::Relaxed), 0);
    assert!(sink.0.lock().unwrap().is_empty(), "no trace lines when off");
}

/// The report renders a table with every recorded span and counter.
#[test]
fn report_lists_recorded_metrics() {
    let _gate = lock();
    {
        let _span = obs::span!("test.report.stage");
    }
    obs::counter!("test.report.visits", 42);
    obs::set_gauge("test.report.size", 128.0);

    let report = obs::report();
    assert!(report.contains("test.report.stage"), "{report}");
    assert!(report.contains("test.report.visits"), "{report}");
    assert!(report.contains("42"), "{report}");
    assert!(report.contains("p50 ms"), "{report}");

    let summary = obs::summary();
    assert_eq!(summary["counters"]["test.report.visits"].as_u64(), Some(42));
    assert_eq!(summary["gauges"]["test.report.size"].as_f64(), Some(128.0));
    assert_eq!(summary["histograms"]["test.report.stage"]["count"].as_u64(), Some(1));
}

/// Reset zeroes metrics while cached handles keep working.
#[test]
fn reset_preserves_cached_handles() {
    let _gate = lock();
    let counter = obs::registry().counter("test.reset.counter");
    counter.fetch_add(3, Ordering::Relaxed);
    let hist = obs::registry().histogram("test.reset.hist");
    hist.record(10);
    obs::registry().reset();
    assert_eq!(counter.load(Ordering::Relaxed), 0);
    assert_eq!(hist.count(), 0);
    // The same handles (and registry names) still record.
    counter.fetch_add(1, Ordering::Relaxed);
    hist.record(20);
    assert_eq!(obs::registry().counter("test.reset.counter").load(Ordering::Relaxed), 1);
    assert_eq!(obs::registry().histogram("test.reset.hist").count(), 1);
}
