//! int8-quantized inference twin of [`TransformerEncoder`].
//!
//! [`QuantizedEncoder`] is built from a trained encoder's
//! [`TransformerEncoder::export_weights`] checkpoint: the six linear
//! projections per layer (Q/K/V/O, FC1, FC2) are per-row symmetrically
//! quantized to i8 with their weight matrices pre-transposed so the
//! reduction axis is contiguous; embeddings, layer norms, softmax, GELU,
//! attention score/context products and residual adds stay f32 (the
//! "dynamic quantization" recipe — see DESIGN.md §16 for the error
//! model). Training never touches this type; it is rebuilt from the f32
//! weights whenever they change (model swap, `enable_quantized`).
//!
//! All per-request temporaries come from the caller's bump [`Arena`], so
//! steady-state serving allocates nothing on the heap beyond the output
//! tensor.

use crate::{EncoderConfig, TransformerEncoder};
use explainti_nn::quant::{qmatmul_rows, QuantizedMatrix};
use explainti_nn::tensor::softmax_into;
use explainti_nn::{Arena, ParamStore, Tensor};
use explainti_tokenizer::Encoded;

/// A quantized affine layer: per-row-quantized Wᵀ plus an f32 bias.
struct QuantLinear {
    /// Wᵀ, quantized per row (row j holds output column j's weights).
    wt: QuantizedMatrix,
    bias: Vec<f32>,
}

impl QuantLinear {
    /// `w` is the f32 weight of shape `in_dim x out_dim`, `b` its bias.
    fn new(w: &Tensor, b: &[f32]) -> QuantLinear {
        QuantLinear { wt: QuantizedMatrix::from_tensor_transposed(w), bias: b.to_vec() }
    }

    fn out_dim(&self) -> usize {
        self.wt.rows
    }

    /// `x` is `rows * in_dim` row-major; writes `rows * out_dim` into `out`.
    fn apply(&self, x: &[f32], rows: usize, xq: &mut [i8], out: &mut [f32]) {
        qmatmul_rows(x, rows, self.wt.cols, &self.wt, Some(&self.bias), xq, out);
    }
}

struct QuantLayer {
    wq: QuantLinear,
    wk: QuantLinear,
    wv: QuantLinear,
    wo: QuantLinear,
    ln1_gain: Vec<f32>,
    ln1_bias: Vec<f32>,
    fc1: QuantLinear,
    fc2: QuantLinear,
    ln2_gain: Vec<f32>,
    ln2_bias: Vec<f32>,
}

/// int8 inference-only encoder mirroring [`TransformerEncoder::forward`]
/// with `training = false`.
pub struct QuantizedEncoder {
    cfg: EncoderConfig,
    head_dim: usize,
    /// f32 token-embedding table, `vocab x d_model` row-major.
    tok_emb: Vec<f32>,
    /// f32 position-embedding table, `max_seq x d_model` row-major.
    pos_emb: Vec<f32>,
    emb_ln_gain: Vec<f32>,
    emb_ln_bias: Vec<f32>,
    layers: Vec<QuantLayer>,
}

/// Sequential reader over the flat checkpoint buffer.
struct FlatReader<'a> {
    flat: &'a [f32],
    off: usize,
}

impl<'a> FlatReader<'a> {
    fn take(&mut self, n: usize) -> &'a [f32] {
        let s = &self.flat[self.off..self.off + n];
        self.off += n;
        s
    }

    fn take_tensor(&mut self, rows: usize, cols: usize) -> Tensor {
        Tensor::from_vec(rows, cols, self.take(rows * cols).to_vec())
    }
}

impl QuantizedEncoder {
    /// Quantizes a trained encoder's current weights. The flat buffer
    /// layout follows the encoder's construction order: token table,
    /// position table, embedding layer norm, then per layer
    /// Q/K/V/O (weight then bias each), ln1, FC1, FC2, ln2.
    pub fn from_encoder(enc: &TransformerEncoder, store: &ParamStore) -> QuantizedEncoder {
        let cfg = enc.config().clone();
        let flat = enc.export_weights(store);
        let d = cfg.d_model;
        let mut r = FlatReader { flat: &flat, off: 0 };
        let tok_emb = r.take(cfg.vocab_size * d).to_vec();
        let pos_emb = r.take(cfg.max_seq * d).to_vec();
        let emb_ln_gain = r.take(d).to_vec();
        let emb_ln_bias = r.take(d).to_vec();
        fn lin(rdr: &mut FlatReader, in_d: usize, out_d: usize) -> QuantLinear {
            let w = rdr.take_tensor(in_d, out_d);
            let b = rdr.take(out_d).to_vec();
            QuantLinear::new(&w, &b)
        }
        let mut layers = Vec::with_capacity(cfg.n_layers);
        for _ in 0..cfg.n_layers {
            let wq = lin(&mut r, d, d);
            let wk = lin(&mut r, d, d);
            let wv = lin(&mut r, d, d);
            let wo = lin(&mut r, d, d);
            let ln1_gain = r.take(d).to_vec();
            let ln1_bias = r.take(d).to_vec();
            let fc1 = lin(&mut r, d, cfg.d_ff);
            let fc2 = lin(&mut r, cfg.d_ff, d);
            let ln2_gain = r.take(d).to_vec();
            let ln2_bias = r.take(d).to_vec();
            layers.push(QuantLayer {
                wq,
                wk,
                wv,
                wo,
                ln1_gain,
                ln1_bias,
                fc1,
                fc2,
                ln2_gain,
                ln2_bias,
            });
        }
        assert_eq!(r.off, flat.len(), "checkpoint layout mismatch");
        QuantizedEncoder {
            head_dim: cfg.d_model / cfg.n_heads,
            cfg,
            tok_emb,
            pos_emb,
            emb_ln_gain,
            emb_ln_bias,
            layers,
        }
    }

    /// Model width `d`.
    pub fn d_model(&self) -> usize {
        self.cfg.d_model
    }

    /// Runs the quantized forward, returning the `max_seq x d_model`
    /// embedding matrix (`E` in the paper; row 0 is `E_[CLS]`).
    /// Temporaries are carved from `arena`; the caller owns its reset
    /// cadence (one reset per request in serving).
    pub fn forward(&self, enc: &Encoded, arena: &Arena) -> Tensor {
        let _span = explainti_obs::span!("encoder.forward_quantized");
        let seq = self.cfg.max_seq;
        let d = self.cfg.d_model;
        assert_eq!(enc.ids.len(), seq, "sequence length mismatch");

        // Embedding sum + layer norm (f32, exactly as the graph path).
        let x = arena.alloc_f32(seq * d);
        for (i, &id) in enc.ids.iter().enumerate() {
            let tok = &self.tok_emb[id * d..(id + 1) * d];
            let pos = &self.pos_emb[i * d..(i + 1) * d];
            let row = &mut x[i * d..(i + 1) * d];
            for c in 0..d {
                row[c] = tok[c] + pos[c];
            }
        }
        layer_norm_rows(x, seq, d, &self.emb_ln_gain, &self.emb_ln_bias);

        let mask = enc.pad_mask();
        let scale = 1.0 / (self.head_dim as f32).sqrt();
        let hd = self.head_dim;
        let d_ff = self.cfg.d_ff;

        let xq = arena.alloc_i8(d.max(d_ff));
        let q = arena.alloc_f32(seq * d);
        let k = arena.alloc_f32(seq * d);
        let v = arena.alloc_f32(seq * d);
        let ctx = arena.alloc_f32(seq * d);
        let attn_out = arena.alloc_f32(seq * d);
        let scores = arena.alloc_f32(seq);
        let probs = arena.alloc_f32(seq);
        let h_buf = arena.alloc_f32(seq * d);
        let ff_hidden = arena.alloc_f32(seq * d_ff);
        let ff_out = arena.alloc_f32(seq * d);

        for layer in &self.layers {
            // Q/K/V projections (quantized matmuls).
            layer.wq.apply(x, seq, xq, q);
            layer.wk.apply(x, seq, xq, k);
            layer.wv.apply(x, seq, xq, v);

            // Per-head scaled-dot-product attention, all f32.
            for h in 0..self.cfg.n_heads {
                let start = h * hd;
                for i in 0..seq {
                    let qi = &q[i * d + start..i * d + start + hd];
                    for j in 0..seq {
                        let kj = &k[j * d + start..j * d + start + hd];
                        let mut s = 0.0f32;
                        for l in 0..hd {
                            s += qi[l] * kj[l];
                        }
                        scores[j] = s * scale + mask[j];
                    }
                    softmax_into(scores, probs);
                    let out_row = &mut ctx[i * d + start..i * d + start + hd];
                    out_row.fill(0.0);
                    for j in 0..seq {
                        let p = probs[j];
                        if p == 0.0 {
                            continue;
                        }
                        let vj = &v[j * d + start..j * d + start + hd];
                        for l in 0..hd {
                            out_row[l] += p * vj[l];
                        }
                    }
                }
            }

            // Output projection, residual, ln1.
            layer.wo.apply(ctx, seq, xq, attn_out);
            for (xi, ai) in x.iter_mut().zip(attn_out.iter()) {
                *xi += ai;
            }
            layer_norm_rows(x, seq, d, &layer.ln1_gain, &layer.ln1_bias);
            h_buf.copy_from_slice(x);

            // Feed-forward: fc1 -> gelu -> fc2, residual, ln2.
            layer.fc1.apply(h_buf, seq, xq, ff_hidden);
            for vph in ff_hidden.iter_mut() {
                *vph = gelu(*vph);
            }
            debug_assert_eq!(layer.fc2.out_dim(), d);
            layer.fc2.apply(ff_hidden, seq, xq, ff_out);
            for (xi, (hi, fi)) in x.iter_mut().zip(h_buf.iter().zip(ff_out.iter())) {
                *xi = hi + fi;
            }
            layer_norm_rows(x, seq, d, &layer.ln2_gain, &layer.ln2_bias);
        }

        Tensor::from_vec(seq, d, x.to_vec())
    }
}

/// In-place per-row layer norm matching `Graph::layer_norm` exactly
/// (same EPS, same mean/variance accumulation order).
fn layer_norm_rows(x: &mut [f32], rows: usize, cols: usize, gain: &[f32], bias: &[f32]) {
    const EPS: f32 = 1e-5;
    for r in 0..rows {
        let row = &mut x[r * cols..(r + 1) * cols];
        let mean = row.iter().sum::<f32>() / cols as f32;
        let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / cols as f32;
        let istd = 1.0 / (var + EPS).sqrt();
        for c in 0..cols {
            row[c] = gain[c] * ((row[c] - mean) * istd) + bias[c];
        }
    }
}

const GELU_C: f32 = 0.797_884_6; // sqrt(2/pi)
const GELU_A: f32 = 0.044_715;

/// GELU tanh approximation, identical to the autograd forward.
fn gelu(x: f32) -> f32 {
    0.5 * x * (1.0 + (GELU_C * (x + GELU_A * x * x * x)).tanh())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TransformerEncoder;
    use explainti_nn::Graph;
    use explainti_tokenizer::{encode_column, Tokenizer};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn setup() -> (Tokenizer, TransformerEncoder, ParamStore, SmallRng) {
        let tok = Tokenizer::train(["alpha beta gamma delta", "one two three"], 128);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let cfg = EncoderConfig::bert_like(tok.vocab_size(), 16);
        let enc = TransformerEncoder::new(&mut store, cfg, &mut rng);
        (tok, enc, store, rng)
    }

    #[test]
    fn quantized_forward_tracks_f32_forward() {
        let (tok, enc, store, mut rng) = setup();
        let qenc = QuantizedEncoder::from_encoder(&enc, &store);
        let arena = Arena::new();
        for (a, b) in [("alpha", "beta"), ("one", "two"), ("gamma", "delta")] {
            let e = encode_column(&tok, a, b, &["gamma", "three"], 16);
            let mut g = Graph::new();
            let node = enc.forward(&mut g, &store, &e, false, &mut rng);
            let exact = g.value(node).clone();
            let approx = qenc.forward(&e, &arena);
            assert_eq!(exact.shape(), approx.shape());
            let mut max_err = 0.0f32;
            for (x, y) in exact.as_slice().iter().zip(approx.as_slice()) {
                max_err = max_err.max((x - y).abs());
            }
            // Untrained weights, 2 layers: int8 error stays well under
            // the golden suite's 1e-2 prob gate at the embedding level.
            assert!(max_err < 0.15, "quantized drift too large: {max_err}");
        }
    }

    #[test]
    fn quantized_forward_is_deterministic_and_arena_stable() {
        let (tok, enc, store, _rng) = setup();
        let qenc = QuantizedEncoder::from_encoder(&enc, &store);
        let e = encode_column(&tok, "alpha", "beta", &["gamma"], 16);
        let mut arena = Arena::new();
        let a = qenc.forward(&e, &arena);
        let cap = arena.capacity();
        for _ in 0..5 {
            arena.reset();
            let b = qenc.forward(&e, &arena);
            assert_eq!(a, b, "quantized forward must be deterministic");
            assert_eq!(arena.capacity(), cap, "steady-state forward must not grow arena");
        }
    }
}
