//! # explainti-encoder
//!
//! A from-scratch pre-trainable transformer encoder standing in for the
//! paper's BERT/RoBERTa base models (see DESIGN.md §2 for the substitution
//! rationale). The encoder maps a fixed-length token sequence to one
//! embedding per position; `E_[CLS]` (row 0) feeds every ExplainTI head.
//!
//! Two [`Variant`]s mirror the paper's two base models: `BertLike` uses
//! static masking during pre-training, `RobertaLike` re-samples masks every
//! epoch (dynamic masking) — the distinguishing training dynamic of
//! RoBERTa that survives miniaturisation.

#![warn(missing_docs)]

pub mod mlm;
pub mod quant;

pub use quant::QuantizedEncoder;

use explainti_nn::{
    Dropout, Embedding, FeedForward, Graph, LayerNorm, MultiHeadAttention, NodeId, ParamStore,
    Tensor,
};
use explainti_tokenizer::Encoded;
use rand::rngs::SmallRng;

/// Base-model flavour (affects pre-training dynamics, not architecture).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// BERT-style: masks are sampled once per sequence (static masking).
    BertLike,
    /// RoBERTa-style: masks are re-sampled every epoch (dynamic masking).
    RobertaLike,
}

/// Architecture and regularisation hyper-parameters.
#[derive(Debug, Clone)]
pub struct EncoderConfig {
    /// Vocabulary size (from the tokenizer).
    pub vocab_size: usize,
    /// Maximum sequence length (the paper uses 64; we default to 32).
    pub max_seq: usize,
    /// Model width `d`.
    pub d_model: usize,
    /// Number of encoder layers.
    pub n_layers: usize,
    /// Attention heads per layer.
    pub n_heads: usize,
    /// Feed-forward hidden width.
    pub d_ff: usize,
    /// Dropout probability applied to embeddings and sub-layer outputs.
    pub dropout: f32,
    /// Base-model flavour.
    pub variant: Variant,
}

impl EncoderConfig {
    /// Laptop-scale configuration mirroring BERT-base's role.
    pub fn bert_like(vocab_size: usize, max_seq: usize) -> Self {
        Self {
            vocab_size,
            max_seq,
            d_model: 32,
            n_layers: 2,
            n_heads: 2,
            d_ff: 64,
            dropout: 0.1,
            variant: Variant::BertLike,
        }
    }

    /// Laptop-scale configuration mirroring RoBERTa-base's role.
    pub fn roberta_like(vocab_size: usize, max_seq: usize) -> Self {
        Self { variant: Variant::RobertaLike, ..Self::bert_like(vocab_size, max_seq) }
    }
}

struct EncoderLayer {
    mha: MultiHeadAttention,
    ln1: LayerNorm,
    ff: FeedForward,
    ln2: LayerNorm,
}

/// The transformer encoder: token + position embeddings, `n_layers`
/// post-LN attention blocks.
pub struct TransformerEncoder {
    cfg: EncoderConfig,
    tok_emb: Embedding,
    pos_emb: Embedding,
    emb_ln: LayerNorm,
    layers: Vec<EncoderLayer>,
    dropout: Dropout,
    /// Contiguous parameter index range in the construction store,
    /// used by [`Self::export_weights`] / [`Self::import_weights`].
    param_range: (usize, usize),
}

impl TransformerEncoder {
    /// Registers all encoder parameters in `store`.
    pub fn new(store: &mut ParamStore, cfg: EncoderConfig, rng: &mut SmallRng) -> Self {
        assert!(cfg.d_model.is_multiple_of(cfg.n_heads), "d_model must divide n_heads");
        let start = store.len();
        let tok_emb = Embedding::new(store, "enc.tok_emb", cfg.vocab_size, cfg.d_model, rng);
        let pos_emb = Embedding::new(store, "enc.pos_emb", cfg.max_seq, cfg.d_model, rng);
        let emb_ln = LayerNorm::new(store, "enc.emb_ln", cfg.d_model);
        let mut layers = Vec::with_capacity(cfg.n_layers);
        for l in 0..cfg.n_layers {
            layers.push(EncoderLayer {
                mha: MultiHeadAttention::new(
                    store,
                    &format!("enc.l{l}.mha"),
                    cfg.d_model,
                    cfg.n_heads,
                    rng,
                ),
                ln1: LayerNorm::new(store, &format!("enc.l{l}.ln1"), cfg.d_model),
                ff: FeedForward::new(store, &format!("enc.l{l}.ff"), cfg.d_model, cfg.d_ff, rng),
                ln2: LayerNorm::new(store, &format!("enc.l{l}.ln2"), cfg.d_model),
            });
        }
        let end = store.len();
        Self {
            dropout: Dropout::new(cfg.dropout),
            cfg,
            tok_emb,
            pos_emb,
            emb_ln,
            layers,
            param_range: (start, end),
        }
    }

    /// The configuration this encoder was built with.
    pub fn config(&self) -> &EncoderConfig {
        &self.cfg
    }

    /// Model width `d` (the dimension of `E_[CLS]`).
    pub fn d_model(&self) -> usize {
        self.cfg.d_model
    }

    /// Runs the encoder over an encoded sequence, returning the
    /// `max_seq x d_model` node of all token embeddings (`E` in the paper).
    pub fn forward(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        enc: &Encoded,
        training: bool,
        rng: &mut SmallRng,
    ) -> NodeId {
        self.forward_with_input(g, store, enc, training, rng).0
    }

    /// Like [`Self::forward`] but also returns the pre-layer input
    /// embedding node (token + position sum), which gradient-based
    /// post-hoc explainers (saliency maps) differentiate against.
    pub fn forward_with_input(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        enc: &Encoded,
        training: bool,
        rng: &mut SmallRng,
    ) -> (NodeId, NodeId) {
        let _span = explainti_obs::span!("encoder.forward");
        assert_eq!(enc.ids.len(), self.cfg.max_seq, "sequence length mismatch");
        let positions: Vec<usize> = (0..enc.ids.len()).collect();
        let tok = self.tok_emb.forward(g, store, &enc.ids);
        let pos = self.pos_emb.forward(g, store, &positions);
        let sum = g.add(tok, pos);
        let normed = self.emb_ln.forward(g, store, sum);
        let mut x = self.dropout.forward(g, normed, training, rng);
        let mask = enc.pad_mask();
        for layer in &self.layers {
            let attn = layer.mha.forward(g, store, x, Some(&mask));
            let attn = self.dropout.forward(g, attn, training, rng);
            let res1 = g.add(x, attn);
            let h = layer.ln1.forward(g, store, res1);
            let ff = layer.ff.forward(g, store, h);
            let ff = self.dropout.forward(g, ff, training, rng);
            let res2 = g.add(h, ff);
            x = layer.ln2.forward(g, store, res2);
        }
        (x, sum)
    }

    /// Runs the encoder over a batch of sequences sharing one tape.
    ///
    /// Within a single [`Graph`], parameter snapshots are memoised, so
    /// the embedding tables and every layer's attention/FF weights are
    /// materialised once per batch instead of once per sequence — the
    /// batch-friendly entry point the inference server's micro-batching
    /// collector drains into. Returns one `max_seq x d_model` node per
    /// sequence, in input order.
    pub fn forward_batch(
        &self,
        g: &mut Graph,
        store: &ParamStore,
        encs: &[Encoded],
        training: bool,
        rng: &mut SmallRng,
    ) -> Vec<NodeId> {
        let _span = explainti_obs::span!("encoder.forward_batch");
        encs.iter().map(|enc| self.forward(g, store, enc, training, rng)).collect()
    }

    /// Extracts `E_[CLS]` (row 0) from a full-forward output node.
    pub fn cls(&self, g: &mut Graph, embeddings: NodeId) -> NodeId {
        g.rows_range(embeddings, 0, 1)
    }

    /// Convenience inference pass returning the CLS embedding as a tensor.
    pub fn embed_cls(&self, store: &ParamStore, enc: &Encoded, rng: &mut SmallRng) -> Tensor {
        let _span = explainti_obs::span!("encoder.embed_cls");
        let mut g = Graph::new();
        let e = self.forward(&mut g, store, enc, false, rng);
        let cls = self.cls(&mut g, e);
        g.value(cls).clone()
    }

    /// Batched variant of [`Self::embed_cls`]: one shared tape per batch,
    /// so weight snapshots amortise across the sequences (used by the
    /// embedding-store refresh and the serving path).
    pub fn embed_cls_batch(
        &self,
        store: &ParamStore,
        encs: &[Encoded],
        rng: &mut SmallRng,
    ) -> Vec<Tensor> {
        let _span = explainti_obs::span!("encoder.embed_cls_batch");
        let pool = explainti_pool::global();
        let chunks = pool.threads().min(encs.len());
        if chunks <= 1 {
            return self.embed_cls_chunk(store, encs, rng);
        }
        // Each chunk runs an independent forward on its own tape, so the
        // per-sequence results are identical to the single-tape path (the
        // tape only memoises read-only weight snapshots). Inference
        // consumes no randomness — dropout is a no-op with
        // `training = false` — so cloning the caller's RNG per chunk is
        // observably equivalent while satisfying the pool's `Fn + Sync`
        // closure bound.
        let proto = rng.clone();
        let chunk_len = encs.len().div_ceil(chunks);
        let slices: Vec<&[Encoded]> = encs.chunks(chunk_len).collect();
        explainti_obs::set_gauge("encoder.batch.chunks", slices.len() as f64);
        pool.map(slices.len(), |i| {
            let mut rng = proto.clone();
            self.embed_cls_chunk(store, slices[i], &mut rng)
        })
        .into_iter()
        .flatten()
        .collect()
    }

    /// Single-tape worker for [`Self::embed_cls_batch`]: one shared
    /// graph per chunk so weight snapshots amortise across sequences.
    fn embed_cls_chunk(
        &self,
        store: &ParamStore,
        encs: &[Encoded],
        rng: &mut SmallRng,
    ) -> Vec<Tensor> {
        let mut g = Graph::new();
        let outs = self.forward_batch(&mut g, store, encs, false, rng);
        outs.into_iter()
            .map(|e| {
                let cls = self.cls(&mut g, e);
                g.value(cls).clone()
            })
            .collect()
    }

    /// Serialises only the encoder's weights (pre-trained checkpoint).
    pub fn export_weights(&self, store: &ParamStore) -> Vec<f32> {
        let mut out = Vec::new();
        for idx in self.param_range.0..self.param_range.1 {
            out.extend_from_slice(store.value(store.param_id_at(idx)).as_slice());
        }
        out
    }

    /// Restores encoder weights exported by [`Self::export_weights`] into a
    /// (possibly different) store where this encoder occupies the same
    /// construction positions.
    ///
    /// # Panics
    /// Panics if the flat buffer does not match the encoder layout.
    pub fn import_weights(&self, store: &mut ParamStore, flat: &[f32]) {
        let mut offset = 0;
        for idx in self.param_range.0..self.param_range.1 {
            let id = store.param_id_at(idx);
            let n = store.value(id).len();
            assert!(offset + n <= flat.len(), "checkpoint too short");
            store.value_mut(id).as_mut_slice().copy_from_slice(&flat[offset..offset + n]);
            offset += n;
        }
        assert_eq!(offset, flat.len(), "checkpoint size mismatch");
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use explainti_tokenizer::{encode_column, Tokenizer};
    use rand::SeedableRng;

    fn setup() -> (Tokenizer, TransformerEncoder, ParamStore, SmallRng) {
        let tok = Tokenizer::train(["alpha beta gamma delta", "one two three"], 128);
        let mut rng = SmallRng::seed_from_u64(3);
        let mut store = ParamStore::new();
        let cfg = EncoderConfig::bert_like(tok.vocab_size(), 16);
        let enc = TransformerEncoder::new(&mut store, cfg, &mut rng);
        (tok, enc, store, rng)
    }

    #[test]
    fn forward_shape_is_seq_by_d() {
        let (tok, enc, store, mut rng) = setup();
        let e = encode_column(&tok, "alpha", "beta", &["gamma", "delta"], 16);
        let mut g = Graph::new();
        let out = enc.forward(&mut g, &store, &e, false, &mut rng);
        assert_eq!(g.value(out).shape(), (16, enc.d_model()));
    }

    #[test]
    fn cls_embedding_is_row_zero() {
        let (tok, enc, store, mut rng) = setup();
        let e = encode_column(&tok, "alpha", "beta", &["gamma"], 16);
        let mut g = Graph::new();
        let out = enc.forward(&mut g, &store, &e, false, &mut rng);
        let cls = enc.cls(&mut g, out);
        assert_eq!(g.value(cls).shape(), (1, enc.d_model()));
        assert_eq!(g.value(cls).row_slice(0), g.value(out).row_slice(0));
    }

    #[test]
    fn inference_is_deterministic() {
        let (tok, enc, store, mut rng) = setup();
        let e = encode_column(&tok, "alpha", "beta", &["gamma"], 16);
        let a = enc.embed_cls(&store, &e, &mut rng);
        let b = enc.embed_cls(&store, &e, &mut rng);
        assert_eq!(a, b);
    }

    #[test]
    fn different_inputs_embed_differently() {
        let (tok, enc, store, mut rng) = setup();
        let e1 = encode_column(&tok, "alpha", "beta", &["gamma"], 16);
        let e2 = encode_column(&tok, "one", "two", &["three"], 16);
        let a = enc.embed_cls(&store, &e1, &mut rng);
        let b = enc.embed_cls(&store, &e2, &mut rng);
        assert!(a.cosine(&b) < 0.999_9, "distinct inputs should not collide");
    }

    #[test]
    fn batch_forward_matches_single_sequence_forward() {
        let (tok, enc, store, mut rng) = setup();
        let e1 = encode_column(&tok, "alpha", "beta", &["gamma", "delta"], 16);
        let e2 = encode_column(&tok, "one", "two", &["three"], 16);
        let singles = [enc.embed_cls(&store, &e1, &mut rng), enc.embed_cls(&store, &e2, &mut rng)];
        let batch = enc.embed_cls_batch(&store, &[e1, e2], &mut rng);
        assert_eq!(batch.len(), 2);
        assert_eq!(batch[0], singles[0]);
        assert_eq!(batch[1], singles[1]);
    }

    #[test]
    fn batch_embed_is_identical_across_pool_widths() {
        let (tok, enc, store, mut rng) = setup();
        let words = ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"];
        let encs: Vec<_> =
            words.iter().map(|w| encode_column(&tok, w, "header", &["cell"], 16)).collect();
        explainti_pool::configure(1);
        let serial = enc.embed_cls_batch(&store, &encs, &mut rng);
        explainti_pool::configure(4);
        let parallel = enc.embed_cls_batch(&store, &encs, &mut rng);
        explainti_pool::configure(explainti_pool::Threads::resolve(None).get());
        assert_eq!(serial, parallel, "pool width must not change embeddings");
    }

    #[test]
    fn export_import_round_trip() {
        let (tok, enc, mut store, mut rng) = setup();
        let e = encode_column(&tok, "alpha", "beta", &["gamma"], 16);
        let before = enc.embed_cls(&store, &e, &mut rng);
        let ckpt = enc.export_weights(&store);

        // Fresh store with identical construction order but different seed.
        let mut rng2 = SmallRng::seed_from_u64(99);
        let mut store2 = ParamStore::new();
        let cfg = EncoderConfig::bert_like(tok.vocab_size(), 16);
        let enc2 = TransformerEncoder::new(&mut store2, cfg, &mut rng2);
        enc2.import_weights(&mut store2, &ckpt);
        let after = enc2.embed_cls(&store2, &e, &mut rng);
        assert_eq!(before, after);

        // And back into the original store (no-op).
        enc.import_weights(&mut store, &ckpt);
    }

    #[test]
    fn padding_does_not_change_cls() {
        // Two encodings identical except for trailing pad-only content must
        // give the same CLS embedding thanks to the attention pad mask.
        let (tok, enc, store, mut rng) = setup();
        let short = encode_column(&tok, "alpha", "beta", &["gamma"], 16);
        let mut longer = short.clone();
        // Corrupt padding region ids; mask must hide them.
        for i in longer.len..16 {
            longer.ids[i] = explainti_tokenizer::UNK;
        }
        let a = enc.embed_cls(&store, &short, &mut rng);
        let b = enc.embed_cls(&store, &longer, &mut rng);
        for (x, y) in a.as_slice().iter().zip(b.as_slice()) {
            assert!((x - y).abs() < 1e-4, "pad contamination: {x} vs {y}");
        }
    }
}
