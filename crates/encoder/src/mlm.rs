//! Masked-token pre-training for the from-scratch encoder.
//!
//! Stands in for the BERT/RoBERTa pre-training the paper inherits from
//! HuggingFace checkpoints. The objective is standard masked-language
//! modelling: 15% of non-special positions are selected; 80% become
//! `[MASK]`, 10% a random token, 10% stay unchanged. `BertLike` samples
//! the mask once per sequence (static), `RobertaLike` re-samples every
//! epoch (dynamic masking).

use crate::{TransformerEncoder, Variant};
use explainti_nn::{AdamW, Graph, Linear, LinearSchedule, ParamStore, Tensor};
use explainti_tokenizer::{Encoded, MASK};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::Rng;

/// Pre-training hyper-parameters.
#[derive(Debug, Clone)]
pub struct PretrainConfig {
    /// Number of passes over the corpus.
    pub epochs: usize,
    /// Sequences per optimizer step.
    pub batch_size: usize,
    /// Peak learning rate.
    pub lr: f32,
    /// Fraction of maskable positions to corrupt.
    pub mask_prob: f32,
}

impl Default for PretrainConfig {
    fn default() -> Self {
        Self { epochs: 2, batch_size: 16, lr: 1e-3, mask_prob: 0.15 }
    }
}

/// One corrupted training instance.
struct MaskedInstance {
    corrupted: Encoded,
    /// `(position, original_token)` pairs to predict.
    targets: Vec<(usize, usize)>,
}

fn corrupt(enc: &Encoded, mask_prob: f32, vocab: usize, rng: &mut SmallRng) -> MaskedInstance {
    let mut corrupted = enc.clone();
    let mut targets = Vec::new();
    // Positions 0 (CLS) and structural markers below id 8 stay intact.
    for pos in 1..enc.len {
        let tok = enc.ids[pos];
        if tok < 8 {
            continue;
        }
        if rng.gen::<f32>() >= mask_prob {
            continue;
        }
        targets.push((pos, tok));
        let roll = rng.gen::<f32>();
        corrupted.ids[pos] = if roll < 0.8 {
            MASK
        } else if roll < 0.9 {
            rng.gen_range(8..vocab)
        } else {
            tok
        };
    }
    MaskedInstance { corrupted, targets }
}

/// Pre-trains `encoder` in place on `sequences`, returning the mean loss of
/// the final epoch. The MLM head is registered in `store` after the encoder
/// and simply left behind once pre-training finishes (fine-tuning stores
/// import only the encoder range).
pub fn pretrain_mlm(
    encoder: &TransformerEncoder,
    store: &mut ParamStore,
    sequences: &[Encoded],
    cfg: &PretrainConfig,
    rng: &mut SmallRng,
) -> f32 {
    if sequences.is_empty() {
        return 0.0;
    }
    let vocab = encoder.config().vocab_size;
    let d = encoder.d_model();
    let head = Linear::new(store, "mlm.head", d, vocab, rng);

    let steps = (sequences.len() / cfg.batch_size.max(1) + 1) * cfg.epochs;
    let mut opt = AdamW::new(LinearSchedule::new(cfg.lr, steps / 20 + 1, steps));

    // Static masking: corrupt once, reuse across epochs (BertLike).
    let static_masks: Vec<MaskedInstance> =
        sequences.iter().map(|s| corrupt(s, cfg.mask_prob, vocab, rng)).collect();

    let mut order: Vec<usize> = (0..sequences.len()).collect();
    let mut last_epoch_loss = 0.0;
    for _epoch in 0..cfg.epochs {
        order.shuffle(rng);
        let dynamic: Vec<MaskedInstance>;
        let instances: &[MaskedInstance] = match encoder.config().variant {
            Variant::BertLike => &static_masks,
            Variant::RobertaLike => {
                dynamic = sequences.iter().map(|s| corrupt(s, cfg.mask_prob, vocab, rng)).collect();
                &dynamic
            }
        };
        let mut epoch_loss = 0.0;
        let mut batches = 0usize;
        for chunk in order.chunks(cfg.batch_size.max(1)) {
            let mut batch_loss = 0.0;
            let mut any = false;
            for &i in chunk {
                let inst = &instances[i];
                if inst.targets.is_empty() {
                    continue;
                }
                any = true;
                let mut g = Graph::new();
                let emb = encoder.forward(&mut g, store, &inst.corrupted, true, rng);
                // Select the masked rows with a 0/1 selection matrix so one
                // matmul gathers every target position.
                let m = inst.targets.len();
                let seq = inst.corrupted.ids.len();
                let mut sel = Tensor::zeros(m, seq);
                let mut labels = Vec::with_capacity(m);
                for (r, &(pos, orig)) in inst.targets.iter().enumerate() {
                    sel.set(r, pos, 1.0);
                    labels.push(orig);
                }
                let sel_n = g.input(sel);
                let picked = g.matmul(sel_n, emb);
                let logits = head.forward(&mut g, store, picked);
                let loss = g.cross_entropy(logits, &labels);
                batch_loss += g.value(loss).as_slice()[0];
                g.backward(loss);
                g.flush_grads(store);
            }
            if any {
                opt.step(store);
                epoch_loss += batch_loss / chunk.len() as f32;
                batches += 1;
            }
        }
        last_epoch_loss = epoch_loss / batches.max(1) as f32;
    }
    last_epoch_loss
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::EncoderConfig;
    use explainti_tokenizer::{encode_column, Tokenizer};
    use rand::SeedableRng;

    fn corpus(tok: &Tokenizer) -> Vec<Encoded> {
        let mut seqs = Vec::new();
        for i in 0..24 {
            let title = if i % 2 == 0 { "city stats" } else { "player stats" };
            let header = if i % 2 == 0 { "country" } else { "team" };
            let cells: Vec<&str> = if i % 2 == 0 {
                vec!["france", "spain", "kenya"]
            } else {
                vec!["chicago bulls", "golden state"]
            };
            seqs.push(encode_column(tok, title, header, &cells, 16));
        }
        seqs
    }

    #[test]
    fn corrupt_targets_are_recoverable() {
        let tok = Tokenizer::train(["france spain kenya city stats"], 128);
        let enc = encode_column(&tok, "city stats", "country", &["france"], 16);
        let mut rng = SmallRng::seed_from_u64(5);
        let inst = corrupt(&enc, 1.0, tok.vocab_size(), &mut rng);
        assert!(!inst.targets.is_empty());
        for &(pos, orig) in &inst.targets {
            assert_eq!(enc.ids[pos], orig);
            assert!(orig >= 8, "specials must never be masked");
        }
    }

    #[test]
    fn pretraining_reduces_loss() {
        let tok = Tokenizer::train(
            [
                "city stats country france spain kenya",
                "player stats team chicago bulls golden state",
            ],
            256,
        );
        let mut rng = SmallRng::seed_from_u64(11);
        let mut store = ParamStore::new();
        let encoder = TransformerEncoder::new(
            &mut store,
            EncoderConfig::bert_like(tok.vocab_size(), 16),
            &mut rng,
        );
        let seqs = corpus(&tok);
        let first = pretrain_mlm(
            &encoder,
            &mut store,
            &seqs,
            &PretrainConfig { epochs: 1, ..Default::default() },
            &mut rng,
        );
        let later = pretrain_mlm(
            &encoder,
            &mut store,
            &seqs,
            &PretrainConfig { epochs: 4, ..Default::default() },
            &mut rng,
        );
        assert!(later < first, "MLM loss should fall with more training: {first} -> {later}");
    }

    #[test]
    fn roberta_variant_uses_dynamic_masks() {
        // Smoke test: dynamic masking path must run without panicking and
        // produce a finite loss.
        let tok = Tokenizer::train(["alpha beta gamma delta epsilon"], 128);
        let mut rng = SmallRng::seed_from_u64(13);
        let mut store = ParamStore::new();
        let encoder = TransformerEncoder::new(
            &mut store,
            EncoderConfig::roberta_like(tok.vocab_size(), 16),
            &mut rng,
        );
        let seqs: Vec<Encoded> = (0..8)
            .map(|_| encode_column(&tok, "alpha", "beta", &["gamma delta epsilon"], 16))
            .collect();
        let loss = pretrain_mlm(&encoder, &mut store, &seqs, &PretrainConfig::default(), &mut rng);
        assert!(loss.is_finite());
    }
}
