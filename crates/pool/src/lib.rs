//! # explainti-pool
//!
//! A dependency-free, panic-safe scoped thread pool shared by every
//! compute kernel in the reproduction: the blocked matmul kernels in
//! `explainti-nn`, batch splitting in `explainti-encoder` /
//! `explainti-core`, HNSW neighbour-distance evaluation in
//! `explainti-ann`, and the inference server's worker threads.
//!
//! Design constraints, in order:
//!
//! 1. **Scoped**: [`ThreadPool::scope`] blocks until every task of the
//!    submitted job has finished, so closures may borrow stack data
//!    (tensor slices, packed panels) without `'static` bounds.
//! 2. **Panic-safe**: a panicking task never deadlocks the pool. The
//!    first panic payload is captured and re-raised on the submitting
//!    thread once the job drains, exactly like `std::thread::scope`.
//! 3. **Deadlock-free under nesting and sharing**: the submitting
//!    thread always participates in its own job, so a job makes
//!    progress even when every worker is busy (or the pool has zero
//!    workers). Nested `scope` calls from inside tasks are therefore
//!    safe, and many threads (e.g. the serve worker pool) can share one
//!    pool concurrently.
//! 4. **One knob**: [`Threads`] resolves the pool width once from
//!    `--threads` / `EXPLAINTI_THREADS` / available parallelism, and
//!    [`configure`] installs it globally; kernels call [`global`].
//!
//! Work distribution is chunked: a job is `tasks` indices claimed from
//! a shared atomic counter, so imbalanced tasks (ragged batch chunks,
//! trailing row blocks) self-balance across workers.

#![warn(missing_docs)]

use std::any::Any;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, OnceLock};

use explainti_sync::{classes, OrderedMutex, OrderedRwLock};
use std::thread::JoinHandle;

// ---- Threads config ---------------------------------------------------

/// The resolved kernel-parallelism width.
///
/// Precedence: an explicit value (a `--threads` flag), then the
/// `EXPLAINTI_THREADS` environment variable, then
/// [`std::thread::available_parallelism`]. Zero and unparseable values
/// are ignored at every level, so the result is always ≥ 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Threads(usize);

impl Threads {
    /// Resolves the thread count from `explicit` → env → hardware.
    pub fn resolve(explicit: Option<usize>) -> Self {
        let n = explicit
            .filter(|&n| n > 0)
            .or_else(|| {
                std::env::var("EXPLAINTI_THREADS")
                    .ok()
                    .and_then(|s| s.trim().parse().ok())
                    .filter(|&n: &usize| n > 0)
            })
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        Threads(n)
    }

    /// The resolved width (always ≥ 1).
    pub fn get(self) -> usize {
        self.0
    }
}

// ---- Job --------------------------------------------------------------

/// Erased-lifetime pointer to the submitting scope's closure.
///
/// Sound because [`ThreadPool::scope`] blocks until `pending == 0`, so
/// the pointee outlives every dereference; `Sync` on the original
/// closure is enforced before erasure.
struct RawTask(*const (dyn Fn(usize) + Sync));

// SAFETY: the pointee is `Sync` (checked at the `scope` call site) and
// outlives the job (the scope blocks until the job fully drains).
unsafe impl Send for RawTask {}
// SAFETY: same contract as `Send` above — the erased closure is `Sync`,
// so concurrent `&RawTask` dereferences from multiple workers are sound.
unsafe impl Sync for RawTask {}

struct Job {
    task: RawTask,
    /// Next unclaimed task index.
    next: AtomicUsize,
    /// Total number of task indices in `0..total`.
    total: usize,
    /// Tasks claimed but not yet finished, plus tasks unclaimed.
    pending: AtomicUsize,
    done: OrderedMutex<bool>,
    done_cv: Condvar,
    /// First captured panic payload, re-raised by the scope owner.
    panic: OrderedMutex<Option<Box<dyn Any + Send + 'static>>>,
    /// Tasks executed by pool workers (vs the submitting thread) —
    /// the numerator of the effective-parallelism telemetry.
    by_workers: AtomicUsize,
    /// Span-capture context of the submitting thread, re-installed
    /// around every task so spans closed on pool workers attribute to
    /// the request that submitted the job (wide-event tracing).
    capture: Option<explainti_obs::SpanCapture>,
}

impl Job {
    fn exhausted(&self) -> bool {
        // ORDERING: Relaxed — `next` is only a work-stealing cursor; the
        // happens-before edge for task effects is `pending` (AcqRel)
        // plus the `done` mutex, never this load.
        self.next.load(Ordering::Relaxed) >= self.total
    }

    /// Claims and runs task indices until the job is exhausted.
    /// Returns how many tasks this thread executed.
    fn run(&self, worker: bool) -> usize {
        // Extend the submitter's span capture over this thread for the
        // duration of the job (a re-install on the submitting thread
        // itself is a harmless self-replacement).
        let _capture = self.capture.as_ref().map(|c| c.install());
        // SAFETY: see `RawTask` — the closure outlives the job.
        let f = unsafe { &*self.task.0 };
        let mut ran = 0;
        loop {
            // ORDERING: Relaxed — claiming an index needs atomicity only;
            // each claimed index is touched by exactly one thread, and
            // completion is published through `pending` below.
            let idx = self.next.fetch_add(1, Ordering::Relaxed);
            if idx >= self.total {
                break;
            }
            ran += 1;
            // Chaos site: injected task panic, recovered by the same
            // catch_unwind path a real task panic takes.
            if let Err(payload) = catch_unwind(AssertUnwindSafe(|| {
                if explainti_faults::triggered("pool.task.panic") {
                    panic!("injected failpoint panic: pool.task.panic");
                }
                f(idx)
            })) {
                let mut slot = self.panic.lock();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            // ORDERING: AcqRel — the last decrement must observe every
            // other task's writes (Acquire) before the scope owner reads
            // results, and publish this task's writes (Release) to it.
            if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                *self.done.lock() = true;
                self.done_cv.notify_all();
            }
        }
        if worker && ran > 0 {
            // ORDERING: Relaxed — telemetry counter; read only after the
            // job drains (synchronised by `pending`/`done` above).
            self.by_workers.fetch_add(ran, Ordering::Relaxed);
        }
        ran
    }
}

// ---- Pool -------------------------------------------------------------

struct PoolState {
    jobs: VecDeque<Arc<Job>>,
    closed: bool,
}

struct PoolShared {
    state: OrderedMutex<PoolState>,
    work_cv: Condvar,
}

/// A fixed set of worker threads executing scoped, chunked jobs.
///
/// A pool of width `n` spawns `n - 1` workers; the thread calling
/// [`scope`](Self::scope) is the `n`-th executor. A width-1 pool runs
/// everything inline on the caller.
pub struct ThreadPool {
    shared: Arc<PoolShared>,
    workers: Vec<JoinHandle<()>>,
    threads: usize,
}

fn worker_loop(shared: &PoolShared) {
    loop {
        let job = {
            let mut st = shared.state.lock();
            loop {
                st.jobs.retain(|j| !j.exhausted());
                explainti_obs::set_gauge("pool.queue.depth", st.jobs.len() as f64);
                if let Some(job) = st.jobs.front() {
                    break Arc::clone(job);
                }
                if st.closed {
                    return;
                }
                st = st.wait(&shared.work_cv);
            }
        };
        job.run(true);
    }
}

impl ThreadPool {
    /// A pool of total width `threads` (≥ 1): `threads - 1` spawned
    /// workers plus the submitting thread.
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let shared = Arc::new(PoolShared {
            state: OrderedMutex::new(
                &classes::POOL_STATE,
                PoolState { jobs: VecDeque::new(), closed: false },
            ),
            work_cv: Condvar::new(),
        });
        let workers = (0..threads - 1)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("explainti-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        Self { shared, workers, threads }
    }

    /// Total width: spawned workers plus the submitting thread.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs `f(0)`, `f(1)`, …, `f(tasks - 1)` across the pool and the
    /// calling thread, returning once **all** tasks have finished.
    ///
    /// The closure may borrow non-`'static` data — the scope outlives
    /// every task. If any task panics, the first panic is re-raised
    /// here after the job drains (remaining tasks still run, matching
    /// `std::thread::scope` semantics).
    pub fn scope<F: Fn(usize) + Sync>(&self, tasks: usize, f: F) {
        if tasks == 0 {
            return;
        }
        if tasks == 1 || self.workers.is_empty() {
            // Inline fast path: no erasure, panics propagate natively
            // (including the injected `pool.task.panic` one, so the site
            // behaves the same at every pool width).
            for i in 0..tasks {
                if explainti_faults::triggered("pool.task.panic") {
                    panic!("injected failpoint panic: pool.task.panic");
                }
                f(i);
            }
            return;
        }
        let _scope_span = explainti_obs::span!("pool.scope");
        let local: &(dyn Fn(usize) + Sync) = &f;
        // SAFETY: erases the borrow lifetime; `scope` blocks below until
        // `pending == 0`, so the closure outlives every worker access.
        let erased: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(local) };
        let job = Arc::new(Job {
            task: RawTask(erased as *const _),
            next: AtomicUsize::new(0),
            total: tasks,
            pending: AtomicUsize::new(tasks),
            done: OrderedMutex::new(&classes::POOL_JOB_DONE, false),
            done_cv: Condvar::new(),
            panic: OrderedMutex::new(&classes::POOL_JOB_PANIC, None),
            by_workers: AtomicUsize::new(0),
            capture: explainti_obs::trace::current_capture(),
        });
        {
            let mut st = self.shared.state.lock();
            st.jobs.push_back(Arc::clone(&job));
            explainti_obs::set_gauge("pool.queue.depth", st.jobs.len() as f64);
        }
        self.shared.work_cv.notify_all();

        // The caller is an executor too: guarantees progress even when
        // every worker is busy (nested scopes, shared pools).
        let inline = job.run(false);

        let mut done = job.done.lock();
        while !*done {
            done = done.wait(&job.done_cv);
        }
        drop(done);

        explainti_obs::counter!("pool.jobs", 1);
        explainti_obs::counter!("pool.tasks.inline", inline as u64);
        // ORDERING: Relaxed — by_workers is telemetry; the job already
        // drained (done mutex), so the value is final.
        explainti_obs::counter!("pool.tasks.worker", job.by_workers.load(Ordering::Relaxed) as u64);
        let payload = job.panic.lock().take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }

    /// Like [`scope`](Self::scope), but collects `f(i)` results in
    /// index order.
    pub fn map<R: Send, F: Fn(usize) -> R + Sync>(&self, tasks: usize, f: F) -> Vec<R> {
        let slots: Vec<OrderedMutex<Option<R>>> =
            (0..tasks).map(|_| OrderedMutex::new(&classes::POOL_MAP_SLOT, None)).collect();
        self.scope(tasks, |i| {
            let value = f(i);
            *slots[i].lock() = Some(value);
        });
        slots
            .into_iter()
            .map(|m| m.into_inner().expect("scope returned, so every task completed"))
            .collect()
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        {
            let mut st = self.shared.state.lock();
            st.closed = true;
        }
        self.shared.work_cv.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

// ---- Global pool ------------------------------------------------------

static GLOBAL: OnceLock<OrderedRwLock<Arc<ThreadPool>>> = OnceLock::new();

fn global_slot() -> &'static OrderedRwLock<Arc<ThreadPool>> {
    GLOBAL.get_or_init(|| {
        let threads = Threads::resolve(None).get();
        explainti_obs::set_gauge("pool.threads", threads as f64);
        OrderedRwLock::new(&classes::POOL_GLOBAL, Arc::new(ThreadPool::new(threads)))
    })
}

/// The process-wide pool every kernel uses. Initialised on first use
/// from [`Threads::resolve`]`(None)`; replaceable via [`configure`].
pub fn global() -> Arc<ThreadPool> {
    Arc::clone(&global_slot().read())
}

/// Replaces the global pool with one of width `threads` (≥ 1).
///
/// In-flight jobs on the previous pool finish normally — callers hold
/// their own `Arc` and the old workers drain before dropping.
pub fn configure(threads: usize) {
    let threads = threads.max(1);
    let current = global();
    if current.threads() == threads {
        return;
    }
    explainti_obs::set_gauge("pool.threads", threads as f64);
    *global_slot().write() = Arc::new(ThreadPool::new(threads));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn scope_runs_every_task_borrowing_stack_data() {
        let pool = ThreadPool::new(4);
        let data: Vec<u64> = (0..257).collect();
        let sum = AtomicU64::new(0);
        pool.scope(data.len(), |i| {
            sum.fetch_add(data[i], Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 257 * 256 / 2);
    }

    #[test]
    fn map_preserves_index_order() {
        let pool = ThreadPool::new(3);
        let out = pool.map(100, |i| i * i);
        assert_eq!(out, (0..100).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn width_one_pool_runs_inline() {
        let pool = ThreadPool::new(1);
        assert!(pool.workers.is_empty());
        let out = pool.map(10, |i| i + 1);
        assert_eq!(out[9], 10);
    }

    #[test]
    fn scope_propagates_panics_instead_of_deadlocking() {
        let pool = ThreadPool::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.scope(64, |i| {
                if i == 17 {
                    panic!("task 17 exploded");
                }
            });
        }));
        let payload = result.expect_err("panic must propagate to the scope owner");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "task 17 exploded");
        // The pool must remain fully usable after a panicked job.
        let out = pool.map(32, |i| i);
        assert_eq!(out.len(), 32);
    }

    #[test]
    fn inline_path_propagates_panics_too() {
        let pool = ThreadPool::new(1);
        let result = catch_unwind(AssertUnwindSafe(|| pool.scope(3, |_| panic!("inline"))));
        assert!(result.is_err());
        pool.scope(3, |_| {});
    }

    #[test]
    fn nested_scopes_complete() {
        let pool = ThreadPool::new(3);
        let total = AtomicUsize::new(0);
        pool.scope(4, |_| {
            pool.scope(8, |_| {
                total.fetch_add(1, Ordering::Relaxed);
            });
        });
        assert_eq!(total.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn concurrent_scopes_from_many_threads() {
        let pool = Arc::new(ThreadPool::new(4));
        let total = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..6)
            .map(|_| {
                let pool = Arc::clone(&pool);
                let total = Arc::clone(&total);
                std::thread::spawn(move || {
                    pool.scope(50, |_| {
                        total.fetch_add(1, Ordering::Relaxed);
                    });
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(total.load(Ordering::Relaxed), 300);
    }

    #[test]
    fn span_capture_extends_across_pool_workers() {
        explainti_obs::set_level(explainti_obs::Level::Info);
        let pool = ThreadPool::new(4);
        let cap = explainti_obs::SpanCapture::new();
        {
            let _g = cap.install();
            pool.scope(64, |_| {
                let _span = explainti_obs::span!("pooltest.task");
                std::hint::black_box(());
            });
        }
        // Every task's span lands in the submitter's capture, no matter
        // which thread ran it (the job re-installs the capture).
        assert!(
            cap.sums().contains_key("pooltest.task"),
            "pool-worker spans must feed the submitting capture"
        );
        // Spans closed after the scope no longer feed the capture.
        let before = cap.get("pooltest.task");
        {
            let _span = explainti_obs::span!("pooltest.task");
        }
        assert_eq!(cap.get("pooltest.task"), before);
    }

    #[test]
    fn threads_resolution_precedence() {
        assert_eq!(Threads::resolve(Some(7)).get(), 7);
        // Zero explicit values fall through rather than producing a
        // zero-width pool.
        assert!(Threads::resolve(Some(0)).get() >= 1);
        assert!(Threads::resolve(None).get() >= 1);
    }

    #[test]
    fn drop_joins_workers() {
        let pool = ThreadPool::new(4);
        pool.scope(16, |_| {});
        drop(pool); // must not hang
    }
}
