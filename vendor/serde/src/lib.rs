//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so this vendored crate
//! supplies the serialisation contract the workspace relies on:
//! `#[derive(Serialize, Deserialize)]` on named-field structs and
//! fieldless enums, routed through a JSON-shaped [`Value`] tree. The
//! companion `serde_json` crate adds text encoding/decoding and the
//! `json!` macro on top of the same `Value`.
//!
//! Differences from upstream serde are deliberate and contained:
//! serialisation always materialises a [`Value`] (no streaming
//! serialisers), and `std::time::Duration` serialises as fractional
//! seconds (what this repo's telemetry wants).

use std::collections::{BTreeMap, HashMap};
use std::time::Duration;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree: the universal intermediate representation.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// JSON number (stored as `f64`; integers survive up to 2^53).
    Number(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with deterministically ordered keys.
    Object(BTreeMap<String, Value>),
}

impl Value {
    /// The boolean payload, if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The numeric payload, if this is a `Number`.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an integer, if it is integral.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 && *n >= 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The string payload, if this is a `String`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The element list, if this is an `Array`.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The key/value map, if this is an `Object`.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Whether this is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object member lookup (`None` for non-objects and absent keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        const NULL: Value = Value::Null;
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::IndexMut<&str> for Value {
    /// Auto-vivifies: indexing a `Null` turns it into an object, matching
    /// `serde_json`'s `value[key] = ...` ergonomics.
    fn index_mut(&mut self, key: &str) -> &mut Value {
        if self.is_null() {
            *self = Value::Object(BTreeMap::new());
        }
        match self {
            Value::Object(m) => m.entry(key.to_string()).or_insert(Value::Null),
            other => panic!("cannot index into {other:?} with a string key"),
        }
    }
}

impl std::ops::Index<String> for Value {
    type Output = Value;
    fn index(&self, key: String) -> &Value {
        &self[key.as_str()]
    }
}

impl std::ops::IndexMut<String> for Value {
    fn index_mut(&mut self, key: String) -> &mut Value {
        &mut self[key.as_str()]
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, idx: usize) -> &Value {
        match self {
            Value::Array(a) => &a[idx],
            other => panic!("cannot index into {other:?} with a usize"),
        }
    }
}

/// Serialisation/deserialisation failure.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    /// An error with a free-form message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Self { msg: msg.into() }
    }

    /// A type-mismatch error.
    pub fn expected(what: &str, context: &str) -> Self {
        Self { msg: format!("expected {what} while deserialising {context}") }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Types convertible into a [`Value`].
pub trait Serialize {
    /// This value as a [`Value`] tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a [`Value`] tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// ---- Serialize impls --------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

macro_rules! serialize_number {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
    )*};
}

serialize_number!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

impl Serialize for Duration {
    /// Fractional seconds — the convention this repo's telemetry uses.
    fn to_value(&self) -> Value {
        Value::Number(self.as_secs_f64())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        self.as_slice().to_value()
    }
}

impl<A: Serialize, B: Serialize> Serialize for (A, B) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value()])
    }
}

impl<A: Serialize, B: Serialize, C: Serialize> Serialize for (A, B, C) {
    fn to_value(&self) -> Value {
        Value::Array(vec![self.0.to_value(), self.1.to_value(), self.2.to_value()])
    }
}

/// Map keys: anything that renders as a JSON object key.
pub trait MapKey {
    /// The key as a string.
    fn as_key(&self) -> String;
}

impl MapKey for String {
    fn as_key(&self) -> String {
        self.clone()
    }
}

impl MapKey for &str {
    fn as_key(&self) -> String {
        (*self).to_string()
    }
}

impl MapKey for usize {
    fn as_key(&self) -> String {
        self.to_string()
    }
}

impl<K: MapKey, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.as_key(), v.to_value())).collect())
    }
}

impl<K: MapKey, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.as_key(), v.to_value())).collect())
    }
}

// ---- Deserialize impls ------------------------------------------------

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::expected("bool", "bool"))
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_string).ok_or_else(|| Error::expected("string", "String"))
    }
}

macro_rules! deserialize_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_f64().ok_or_else(|| Error::expected("number", stringify!($t)))?;
                if n.fract() != 0.0 || n < <$t>::MIN as f64 || n > <$t>::MAX as f64 {
                    return Err(Error::custom(format!(
                        "number {n} out of range for {}",
                        stringify!($t)
                    )));
                }
                Ok(n as $t)
            }
        }
    )*};
}

deserialize_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Number(n) => Ok(*n),
            // serde_json writes non-finite floats as null.
            Value::Null => Ok(f64::NAN),
            _ => Err(Error::expected("number", "f64")),
        }
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        f64::from_value(v).map(|n| n as f32)
    }
}

impl Deserialize for Duration {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let secs = v.as_f64().ok_or_else(|| Error::expected("number", "Duration"))?;
        if !secs.is_finite() || secs < 0.0 {
            return Err(Error::custom(format!("invalid duration {secs}")));
        }
        Ok(Duration::from_secs_f64(secs))
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::expected("array", "Vec"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::expected("object", "BTreeMap"))?
            .iter()
            .map(|(k, x)| V::from_value(x).map(|x| (k.clone(), x)))
            .collect()
    }
}

/// Derive-macro helper: extracts and deserialises one struct field,
/// treating an absent key as `Null` (so `Option` fields default to
/// `None` while everything else reports a clear error).
pub fn __field<T: Deserialize>(
    obj: &BTreeMap<String, Value>,
    name: &'static str,
) -> Result<T, Error> {
    match obj.get(name) {
        Some(v) => T::from_value(v).map_err(|e| Error::custom(format!("field `{name}`: {e}"))),
        None => T::from_value(&Value::Null)
            .map_err(|_| Error::custom(format!("missing field `{name}`"))),
    }
}
