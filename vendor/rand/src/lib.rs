//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this vendored
//! crate provides the exact API subset the workspace uses — `SmallRng`
//! (xoshiro256** seeded via SplitMix64), the `Rng`/`SeedableRng` traits
//! with `gen`/`gen_range`, and `seq::SliceRandom::shuffle` — implemented
//! on `std` alone. Streams differ from upstream `rand` for the same seed,
//! but every consumer in this workspace relies only on determinism and
//! uniformity, not on upstream's exact bit streams.

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    /// The next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Deterministic construction from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that [`Rng::gen`] can produce: uniform over the type's natural
/// unit domain (`[0, 1)` for floats, the full range for integers).
pub trait Standard: Sized {
    /// Samples one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 24 mantissa bits -> uniform in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types [`Rng::gen_range`] can sample uniformly from a range.
///
/// The single blanket [`SampleRange`] impl below unifies the target
/// type with the range's element type, which is what lets integer
/// literal defaulting work exactly like upstream `rand`
/// (`rng.gen_range(0..10)` infers `i32`).
pub trait SampleUniform: Sized + PartialOrd {
    /// Uniform sample from `[lo, hi)` (`inclusive = false`) or
    /// `[lo, hi]` (`inclusive = true`). Bounds are pre-validated.
    fn sample_uniform<R: RngCore + ?Sized>(
        rng: &mut R,
        lo: Self,
        hi: Self,
        inclusive: bool,
    ) -> Self;
}

macro_rules! int_uniform_impls {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                // Widening-multiply range reduction (Lemire); bias is
                // negligible for the span sizes this workspace draws.
                let span = (hi as i128 - lo as i128) as u128 + inclusive as u128;
                let off = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

int_uniform_impls!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! float_uniform_impls {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_uniform<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                let unit = <$t as Standard>::sample_standard(rng);
                let v = lo + (hi - lo) * unit;
                // Guard the half-open contract against rounding at the top.
                if !inclusive && v >= hi { lo } else { v }
            }
        }
    )*};
}

float_uniform_impls!(f32, f64);

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    ///
    /// # Panics
    /// Panics when the range is empty (matching upstream `rand`).
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_uniform(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform + Copy> SampleRange<T> for core::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_uniform(rng, lo, hi, true)
    }
}

/// The user-facing generator interface (auto-implemented for every
/// [`RngCore`]).
pub trait Rng: RngCore {
    /// A uniform sample over `T`'s unit domain.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// A uniform sample from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// A biased coin flip with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, deterministic generator (xoshiro256**).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // xoshiro forbids the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9e37_79b9_7f4a_7c15;
            }
            Self { s }
        }
    }

    impl RngCore for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::Rng;

    /// Random slice operations.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly chosen element, or `None` when empty.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn unit_floats_stay_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f32 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let i = rng.gen_range(3..17usize);
            assert!((3..17).contains(&i));
            let f = rng.gen_range(-2.0f32..2.0);
            assert!((-2.0..2.0).contains(&f));
            let k = rng.gen_range(5..=5u64);
            assert_eq!(k, 5);
        }
    }

    #[test]
    fn integer_ranges_hit_every_value() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut seen = [false; 8];
        for _ in 0..1_000 {
            seen[rng.gen_range(0..8usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = SmallRng::seed_from_u64(1);
        let _ = rng.gen_range(5..5usize);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(13);
        let mut v: Vec<usize> = (0..64).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<_>>());
        assert_ne!(v, (0..64).collect::<Vec<_>>(), "64 elements should not shuffle to identity");
    }

    #[test]
    fn mean_of_unit_samples_is_near_half() {
        let mut rng = SmallRng::seed_from_u64(17);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
