//! Offline stand-in for the `bytes` crate.
//!
//! Provides `Bytes`/`BytesMut` plus the `Buf`/`BufMut` subset the
//! checkpoint codec uses (little-endian u64/f32, slices, cursor-style
//! reads over `&[u8]`). Backed by `Vec<u8>` — no refcounted slicing, as
//! nothing in this workspace shares buffers.

use std::ops::Deref;

/// An immutable byte buffer (here: an owned `Vec<u8>`).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bytes {
    data: Vec<u8>,
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Self { data }
    }
}

/// A growable byte buffer for encoding.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        Self { data: Vec::with_capacity(cap) }
    }

    /// Converts into an immutable [`Bytes`] without copying.
    pub fn freeze(self) -> Bytes {
        Bytes { data: self.data }
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether nothing has been written yet.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

/// Sequential reads from a byte source.
///
/// # Panics
/// All getters panic when fewer bytes remain than requested, matching
/// upstream `bytes`.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Skips `n` bytes.
    fn advance(&mut self, n: usize);

    /// Copies out the next `dst.len()` bytes.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Reads a little-endian `u64`.
    fn get_u64_le(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_le_bytes(b)
    }

    /// Reads a little-endian `u32`.
    fn get_u32_le(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_le_bytes(b)
    }

    /// Reads a little-endian `f32`.
    fn get_f32_le(&mut self) -> f32 {
        f32::from_bits(self.get_u32_le())
    }

    /// Reads a little-endian `f64`.
    fn get_f64_le(&mut self) -> f64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        f64::from_le_bytes(b)
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        *self = &self[n..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "read past end of buffer");
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }
}

/// Sequential writes into a byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends a little-endian `u64`.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f32`.
    fn put_f32_le(&mut self, v: f32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `f64`.
    fn put_f64_le(&mut self, v: f64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_round_trips() {
        let mut buf = BytesMut::with_capacity(32);
        buf.put_slice(b"HDR!");
        buf.put_u64_le(u64::MAX - 3);
        buf.put_f32_le(-1.5);
        let frozen = buf.freeze();

        let mut cursor: &[u8] = &frozen;
        assert_eq!(cursor.remaining(), 4 + 8 + 4);
        cursor.advance(4);
        assert_eq!(cursor.get_u64_le(), u64::MAX - 3);
        assert_eq!(cursor.get_f32_le(), -1.5);
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "past end")]
    fn reading_past_end_panics() {
        let mut cursor: &[u8] = &[1, 2, 3];
        let _ = cursor.get_u64_le();
    }
}
