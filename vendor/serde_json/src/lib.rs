//! Offline stand-in for `serde_json`.
//!
//! Adds a JSON text layer — parser, compact/pretty writers, and the
//! `json!` macro — on top of the vendored `serde` crate's [`Value`]
//! tree. Covers the API subset this workspace uses: `to_string`,
//! `to_string_pretty`, `from_str`, `to_value`, and `json!` with
//! string-literal keys.

pub use serde::{Error, Value};

/// Converts any serialisable value into a [`Value`] tree.
///
/// Always succeeds (the `Result` matches upstream's signature so call
/// sites can keep their `.unwrap()`).
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Implementation detail of [`json!`].
#[doc(hidden)]
pub fn __to_value<T: serde::Serialize + ?Sized>(value: &T) -> Value {
    value.to_value()
}

/// Builds a [`Value`] from a JSON-ish literal. Object keys must be
/// string literals; values are arbitrary serialisable expressions.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ({ $($key:literal : $val:expr),* $(,)? }) => {{
        let mut m = ::std::collections::BTreeMap::new();
        $( m.insert(::std::string::String::from($key), $crate::__to_value(&$val)); )*
        $crate::Value::Object(m)
    }};
    ([ $($elem:expr),* $(,)? ]) => {
        $crate::Value::Array(::std::vec![ $( $crate::__to_value(&$elem) ),* ])
    };
    ($other:expr) => { $crate::__to_value(&$other) };
}

// ---- Writing ----------------------------------------------------------

/// Serialises to compact JSON text.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serialises to human-indented JSON text.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(a) => {
            if a.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, elem) in a.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, elem, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(m) => {
            if m.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, elem)) in m.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, elem, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
}

fn write_number(out: &mut String, n: f64) {
    use std::fmt::Write;
    if !n.is_finite() {
        // Upstream serde_json has no representation for non-finite
        // floats either; null keeps the document valid.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 1e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        // `{}` on f64 is the shortest round-trip representation.
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use std::fmt::Write;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- Parsing ----------------------------------------------------------

/// Parses JSON text into any deserialisable type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::custom(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::custom(format!("expected `,` or `]` at byte {}", self.pos)))
                }
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = std::collections::BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => {
                    return Err(Error::custom(format!("expected `,` or `}}` at byte {}", self.pos)))
                }
            }
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.peek() {
                None => return Err(Error::custom("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => s.push('"'),
                        Some(b'\\') => s.push('\\'),
                        Some(b'/') => s.push('/'),
                        Some(b'n') => s.push('\n'),
                        Some(b'r') => s.push('\r'),
                        Some(b't') => s.push('\t'),
                        Some(b'b') => s.push('\u{8}'),
                        Some(b'f') => s.push('\u{c}'),
                        Some(b'u') => {
                            let cp = self.parse_hex4()?;
                            // Surrogate pairs: a high surrogate must be
                            // followed by an escaped low surrogate.
                            let c = if (0xD800..0xDC00).contains(&cp) {
                                self.pos += 1; // past the first 'u' group
                                if self.peek() != Some(b'\\') {
                                    return Err(Error::custom("lone surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(Error::custom("lone surrogate"));
                                }
                                let lo = self.parse_hex4()?;
                                if !(0xDC00..0xE000).contains(&lo) {
                                    return Err(Error::custom("invalid surrogate pair"));
                                }
                                let combined = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                                char::from_u32(combined)
                            } else {
                                char::from_u32(cp)
                            };
                            s.push(c.ok_or_else(|| Error::custom("invalid \\u escape"))?);
                        }
                        other => return Err(Error::custom(format!("invalid escape {other:?}"))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 encoded char (input is &str, so
                    // the bytes are valid UTF-8 by construction).
                    let rest = &self.bytes[self.pos..];
                    let text =
                        std::str::from_utf8(rest).map_err(|_| Error::custom("invalid utf-8"))?;
                    let c = text.chars().next().unwrap();
                    s.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Reads the 4 hex digits after a `\u`, leaving `pos` on the last one.
    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let start = self.pos + 1;
        let end = start + 4;
        if end > self.bytes.len() {
            return Err(Error::custom("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[start..end])
            .map_err(|_| Error::custom("invalid \\u escape"))?;
        let cp = u32::from_str_radix(hex, 16).map_err(|_| Error::custom("invalid \\u escape"))?;
        self.pos = end - 1;
        Ok(cp)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_compact() {
        let v = json!({
            "name": "tau",
            "pi": 3.25,
            "n": 42,
            "flag": true,
            "missing": Value::Null,
            "list": vec![1u32, 2, 3],
        });
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v: Value = from_str(r#"{"s": "a\nb\t\"c\" é 😀"}"#).unwrap();
        assert_eq!(v["s"].as_str().unwrap(), "a\nb\t\"c\" é 😀");
        let text = to_string(&v).unwrap();
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn integers_write_without_decimal_point() {
        assert_eq!(to_string(&5u32).unwrap(), "5");
        assert_eq!(to_string(&-3i64).unwrap(), "-3");
        assert_eq!(to_string(&2.5f64).unwrap(), "2.5");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        let back: f64 = from_str("null").unwrap();
        assert!(back.is_nan());
    }

    #[test]
    fn pretty_output_is_parseable() {
        let v = json!({ "a": vec![1u8, 2], "b": "x" });
        let text = to_string_pretty(&v).unwrap();
        assert!(text.contains('\n'));
        let back: Value = from_str(&text).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
    }
}
