//! Offline stand-in for `criterion`.
//!
//! A minimal wall-clock benchmarking harness exposing the API subset
//! this workspace's benches use: `Criterion::benchmark_group`,
//! `sample_size`, `bench_function`, `Bencher::{iter, iter_batched}`,
//! `BatchSize`, and the `criterion_group!`/`criterion_main!` macros.
//! No statistical analysis or HTML reports — it times the routine,
//! prints min/median/mean per benchmark, and exits.

use std::time::{Duration, Instant};

/// Top-level benchmark driver.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        eprintln!("group {name}");
        BenchmarkGroup { group: name.to_string(), sample_size: 100 }
    }
}

/// A named set of benchmarks sharing configuration.
pub struct BenchmarkGroup {
    group: String,
    sample_size: usize,
}

impl BenchmarkGroup {
    /// Number of timed samples collected per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark and prints its timing summary.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b =
            Bencher { samples: Vec::with_capacity(self.sample_size), target: self.sample_size };
        f(&mut b);
        report(&self.group, id, &mut b.samples);
        self
    }

    /// Ends the group (upstream consumes `self`; nothing to flush here).
    pub fn finish(self) {}
}

/// How much setup output to batch per timing in `iter_batched`.
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large inputs: one setup per timed call.
    LargeInput,
    /// Fresh setup for every iteration.
    PerIteration,
}

/// Collects timed samples of the benchmark routine.
pub struct Bencher {
    samples: Vec<Duration>,
    target: usize,
}

impl Bencher {
    /// Times `routine` once per sample after a short warm-up.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..3.min(self.target) {
            let _ = routine(); // warm-up
        }
        for _ in 0..self.target {
            let t = Instant::now();
            let _ = routine();
            self.samples.push(t.elapsed());
        }
    }

    /// Times `routine` on fresh inputs from `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        {
            let input = setup();
            let _ = routine(input); // warm-up
        }
        for _ in 0..self.target {
            let input = setup();
            let t = Instant::now();
            let _ = routine(input);
            self.samples.push(t.elapsed());
        }
    }
}

fn report(group: &str, id: &str, samples: &mut [Duration]) {
    if samples.is_empty() {
        eprintln!("  {group}/{id}: no samples");
        return;
    }
    samples.sort_unstable();
    let min = samples[0];
    let median = samples[samples.len() / 2];
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    eprintln!(
        "  {group}/{id}: min {} | median {} | mean {} ({} samples)",
        fmt(min),
        fmt(median),
        fmt(mean),
        samples.len()
    );
}

fn fmt(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// Bundles benchmark functions into a runnable group, mirroring
/// criterion's macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Generates `main` running each group, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
