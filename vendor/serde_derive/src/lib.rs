//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` / `#[derive(Deserialize)]` for the
//! two shapes this workspace actually derives on — named-field structs
//! and fieldless enums — using nothing but `proc_macro`. The generated
//! impls target the vendored `serde` crate's `Value`-based traits.
//!
//! Unsupported shapes (tuple structs, data-carrying enums, generics)
//! produce a compile error naming the limitation, so a future change
//! that needs them fails loudly rather than silently misbehaving.

use proc_macro::{Delimiter, TokenStream, TokenTree};

enum Shape {
    /// Named-field struct: field identifiers in declaration order.
    Struct { name: String, fields: Vec<String> },
    /// Fieldless enum: variant identifiers in declaration order.
    Enum { name: String, variants: Vec<String> },
}

/// Parses the derive input far enough to know the type name and its
/// fields/variants. Panicking is the proc-macro idiom for derive errors.
fn parse(input: TokenStream) -> Shape {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;

    // Skip outer attributes (`#[...]`, including doc comments) and
    // visibility (`pub`, `pub(crate)`).
    loop {
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = tokens.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => break,
        }
    }

    let kind = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected `struct` or `enum`, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive shim: expected type name, found {other:?}"),
    };
    i += 1;
    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive shim: generic type `{name}` is not supported");
    }

    let body = loop {
        match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                panic!("serde_derive shim: tuple struct `{name}` is not supported")
            }
            Some(_) => i += 1,
            None => panic!("serde_derive shim: `{name}` has no braced body"),
        }
    };

    let body_tokens: Vec<TokenTree> = body.stream().into_iter().collect();
    match kind.as_str() {
        "struct" => Shape::Struct { name, fields: parse_struct_fields(&body_tokens) },
        "enum" => Shape::Enum { name, variants: parse_enum_variants(&body_tokens) },
        other => panic!("serde_derive shim: cannot derive for `{other}`"),
    }
}

fn parse_struct_fields(tokens: &[TokenTree]) -> Vec<String> {
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        // Skip field attributes and visibility.
        loop {
            match tokens.get(i) {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => i += 2,
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    i += 1;
                    if let Some(TokenTree::Group(g)) = tokens.get(i) {
                        if g.delimiter() == Delimiter::Parenthesis {
                            i += 1;
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(TokenTree::Ident(field)) = tokens.get(i) else {
            break;
        };
        fields.push(field.to_string());
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive shim: expected `:` after field, found {other:?}"),
        }
        // Consume the type: scan to the next top-level comma, tracking
        // angle-bracket depth because generics are not token groups.
        let mut angle = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    fields
}

fn parse_enum_variants(tokens: &[TokenTree]) -> Vec<String> {
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        while matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            i += 2;
        }
        let Some(TokenTree::Ident(variant)) = tokens.get(i) else {
            break;
        };
        variants.push(variant.to_string());
        i += 1;
        match tokens.get(i) {
            None => break,
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => i += 1,
            Some(TokenTree::Group(_)) => panic!(
                "serde_derive shim: enum variant `{}` carries data, which is not supported",
                variants.last().unwrap()
            ),
            other => panic!("serde_derive shim: unexpected token after variant: {other:?}"),
        }
    }
    variants
}

/// `#[derive(Serialize)]` for named-field structs and fieldless enums.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let code = match parse(input) {
        Shape::Struct { name, fields } => {
            let inserts: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "m.insert(::std::string::String::from(\"{f}\"), \
                         ::serde::Serialize::to_value(&self.{f}));"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         let mut m = ::std::collections::BTreeMap::new();\n\
                         {inserts}\n\
                         ::serde::Value::Object(m)\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String =
                variants.iter().map(|v| format!("{name}::{v} => \"{v}\",")).collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         ::serde::Value::String(match self {{ {arms} }}.to_string())\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("serde_derive shim: generated Serialize impl must parse")
}

/// `#[derive(Deserialize)]` for named-field structs and fieldless enums.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let code = match parse(input) {
        Shape::Struct { name, fields } => {
            let inits: String =
                fields.iter().map(|f| format!("{f}: ::serde::__field(m, \"{f}\")?,")).collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match v {{\n\
                             ::serde::Value::Object(m) => Ok({name} {{ {inits} }}),\n\
                             _ => Err(::serde::Error::expected(\"object\", \"{name}\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Enum { name, variants } => {
            let arms: String =
                variants.iter().map(|v| format!("Some(\"{v}\") => Ok({name}::{v}),")).collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         match v.as_str() {{\n\
                             {arms}\n\
                             _ => Err(::serde::Error::expected(\"variant of {name}\", \"{name}\")),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    };
    code.parse().expect("serde_derive shim: generated Deserialize impl must parse")
}
