//! Explain a single column end-to-end (the paper's Fig 6 case study as an
//! API walkthrough): train, pick a `location.country` test column, and
//! render the three explanation views with the table content behind each.
//!
//! Run with: `cargo run --release --example explain_column`

use explainti::prelude::*;

fn main() {
    let dataset = generate_wiki(&WikiConfig { num_tables: 200, ..Default::default() });
    let mut cfg = ExplainTiConfig::roberta_like(2048, 32);
    cfg.epochs = 3;
    let mut model = ExplainTi::new(&dataset, cfg);
    model.train();

    let cols = dataset.collection.annotated_columns();
    let country = dataset.collection.type_labels.iter().position(|l| l == "location.country");
    let task = model.task_index(TaskKind::Type).unwrap();
    let sample = model.tasks()[task]
        .data
        .test_idx
        .iter()
        .copied()
        .find(|&i| Some(cols[i].1) == country)
        .unwrap_or(model.tasks()[task].data.test_idx[0]);

    let (cref, gold) = cols[sample];
    let table = &dataset.collection.tables[cref.table];
    let col = &table.columns[cref.col];
    let p = model.predict(TaskKind::Type, sample);
    let name = |l: usize| dataset.collection.type_labels[l].clone();

    println!("━━ input ━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━━");
    println!("title : {}", table.title);
    println!("header: {}", col.header);
    println!("cells : {}", col.cells.join(" | "));
    println!();
    println!(
        "prediction: {}  (gold: {}, confidence {:.2})",
        name(p.label),
        name(gold),
        p.confidence
    );
    println!();
    println!("━━ local view (relevant windows, Eq. 3) ━━━━━━━");
    for s in p.explanation.top_local(3) {
        println!("  RS {:.3} │ \"{}\"", s.relevance, s.text);
    }
    println!();
    println!("━━ global view (influential samples, Eq. 4) ━━━");
    for g in p.explanation.top_global(3) {
        let (r, _) = cols[g.sample];
        let t = &dataset.collection.tables[r.table];
        let c = &t.columns[r.col];
        println!(
            "  IS {:.3} │ {} │ {} / {} → {}",
            g.influence,
            name(g.label),
            t.title,
            c.header,
            c.cells.iter().take(3).cloned().collect::<Vec<_>>().join(", ")
        );
    }
    println!();
    println!("━━ structural view (graph attention, Eq. 5) ━━━");
    for n in p.explanation.top_structural(3) {
        let (r, _) = cols[n.node];
        let t = &dataset.collection.tables[r.table];
        let c = &t.columns[r.col];
        println!(
            "  AS {:.3} │ {} │ {} / {} → {}",
            n.attention,
            name(n.label),
            t.title,
            c.header,
            c.cells.iter().take(3).cloned().collect::<Vec<_>>().join(", ")
        );
    }
}
