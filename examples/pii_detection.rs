//! PII detection — the decision-making scenario that motivates the paper
//! (Section I: "missing or false table metadata of PII may cause a severe
//! privacy leakage").
//!
//! A small corpus of customer-data tables is annotated with PII and
//! non-PII column types; ExplainTI predicts each column's type and the
//! example flags PII columns together with the explanation a data steward
//! would verify.
//!
//! Run with: `cargo run --release --example pii_detection`

use explainti::corpus::dataset::assign_splits;
use explainti::corpus::{ColProvenance, Dataset};
use explainti::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const TYPES: &[(&str, bool, &[&str], &[&str])] = &[
    // (label, is_pii, headers, value templates with {} as a counter)
    ("pii.email", true, &["email", "contact email"], &["user{}@example.com", "acct{}@mail.org"]),
    ("pii.phone", true, &["phone", "mobile"], &["+1 555 01{}", "020 7946 0{}"]),
    ("pii.name", true, &["customer", "full name"], &["maria delgado {}", "henrik olsen {}"]),
    ("pii.address", true, &["address", "street"], &["{} elm street", "{} baker road"]),
    ("other.order_id", false, &["order", "order id"], &["ORD-{}", "PO-{}"]),
    ("other.amount", false, &["amount", "total"], &["{}.99", "{}.50"]),
];

fn build_corpus(num_tables: usize, seed: u64) -> Dataset {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut tables = Vec::new();
    let mut col_provenance = Vec::new();
    for ti in 0..num_tables {
        let rows = rng.gen_range(6..12);
        let n_cols = rng.gen_range(2..4);
        let mut columns = Vec::new();
        for _ in 0..n_cols {
            let t = rng.gen_range(0..TYPES.len());
            let (_, _, headers, templates) = TYPES[t];
            let header = headers[rng.gen_range(0..headers.len())];
            let cells: Vec<String> = (0..rows)
                .map(|_| {
                    let template = templates[rng.gen_range(0..templates.len())];
                    template.replace("{}", &rng.gen_range(100..999).to_string())
                })
                .collect();
            columns.push(Column::new(header, cells, Some(t)));
            col_provenance.push(ColProvenance { signal_rows: (0..rows).collect(), weak: false });
        }
        tables.push(Table::new(format!("customer export {}", ti % 12), columns));
    }
    let table_split = assign_splits(tables.len());
    Dataset {
        name: "pii-demo".into(),
        collection: TableCollection {
            tables,
            type_labels: TYPES.iter().map(|(n, ..)| n.to_string()).collect(),
            relation_labels: Vec::new(),
        },
        table_split,
        col_provenance,
        pair_provenance: Vec::new(),
    }
}

fn main() {
    let dataset = build_corpus(120, 7);
    let mut cfg = ExplainTiConfig::bert_like(1024, 24);
    cfg.epochs = 3;
    let mut model = ExplainTi::new(&dataset, cfg);
    model.train();

    let f1 = model.evaluate(TaskKind::Type, Split::Test);
    println!("column-type F1 on held-out customer tables: {f1}\n");

    // Flag PII columns in the test split, with the evidence a data
    // steward would check before acting.
    let task = model.task_index(TaskKind::Type).unwrap();
    let test_idx = model.tasks()[task].data.test_idx.clone();
    let cols = dataset.collection.annotated_columns();
    let mut flagged = 0;
    for idx in test_idx.iter().take(40) {
        let p = model.predict(TaskKind::Type, *idx);
        let (label_name, is_pii, ..) = TYPES[p.label];
        if !is_pii {
            continue;
        }
        flagged += 1;
        let (cref, _) = cols[*idx];
        let table = &dataset.collection.tables[cref.table];
        let col = &table.columns[cref.col];
        println!(
            "PII ⚠ {label_name:<13} column \"{}\" in \"{}\" (confidence {:.2})",
            col.header, table.title, p.confidence
        );
        if let Some(span) = p.explanation.top_local(1).first() {
            println!("      evidence: \"{}\"", span.text);
        }
    }
    println!("\nflagged {flagged} PII columns for steward review");
}
