//! Interpret a raw CSV file: train ExplainTI on the Web-table corpus,
//! then predict the semantic type of every column of an unseen CSV —
//! the end-to-end adoption path for a real data-management system.
//!
//! Run with: `cargo run --release --example interpret_csv [path/to/file.csv]`

use explainti::prelude::*;
use explainti::table::table_from_csv;

const DEMO_CSV: &str = "\
player,nba team,year
Les Jepsen,Golden State Warriors,1990
Bo Kimble,Los Angeles Lakers,1990
Gary Payton,Boston Celtics,1990
Dennis Scott,Chicago Bulls,1990
";

fn main() {
    // 1. Load the CSV (a bundled demo table unless a path is given).
    let table = match std::env::args().nth(1) {
        Some(path) => {
            let text = std::fs::read_to_string(&path).expect("readable CSV file");
            table_from_csv(&path, &text).expect("valid CSV")
        }
        None => table_from_csv("1990 nba draft", DEMO_CSV).expect("demo CSV parses"),
    };
    println!(
        "loaded \"{}\": {} columns x {} rows",
        table.title,
        table.num_cols(),
        table.num_rows()
    );

    // 2. Train the interpreter on the synthetic Web-table benchmark.
    let dataset = generate_wiki(&WikiConfig { num_tables: 300, ..Default::default() });
    let mut cfg = ExplainTiConfig::roberta_like(2048, 32);
    cfg.epochs = 4;
    let mut model = ExplainTi::new(&dataset, cfg);
    model.train();
    println!(
        "interpreter trained on {} tables ({} column types)\n",
        dataset.collection.tables.len(),
        dataset.collection.type_labels.len()
    );

    // 3. Predict every column of the ingested table, with evidence.
    for col in &table.columns {
        let cells = col.cell_refs();
        let p = model.predict_column(&table.title, &col.header, &cells);
        println!(
            "column \"{}\" → {} ({:.0}% confident)",
            col.header,
            dataset.collection.type_labels[p.label],
            p.confidence * 100.0
        );
        if let Some(span) = p.explanation.top_local(1).first() {
            println!("    local evidence : \"{}\"", span.text);
        }
        if let Some(g) = p.explanation.top_global(1).first() {
            println!(
                "    similar sample : #{} labelled {}",
                g.sample, dataset.collection.type_labels[g.label]
            );
        }
    }
}
