//! Verification queue — the ExplainTI⁺ workflow (paper Fig 4): serialize
//! predictions with their multi-view explanations as JSON for a human
//! verification front-end, then simulate the expert pass with the
//! reading-cost model to estimate the time saved by explanations.
//!
//! Run with: `cargo run --release --example verification_queue`

use explainti::prelude::*;
use explainti::xeval::{simulate, CostModel, JudgeContext, JudgedExplanation, VerificationItem};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let dataset = generate_wiki(&WikiConfig { num_tables: 150, ..Default::default() });
    let mut cfg = ExplainTiConfig::roberta_like(2048, 32);
    cfg.epochs = 3;
    let mut model = ExplainTi::new(&dataset, cfg);
    model.train();

    let task = model.task_index(TaskKind::Type).unwrap();
    let queue: Vec<usize> = model.tasks()[task].data.test_idx.iter().copied().take(10).collect();
    let cols = dataset.collection.annotated_columns();

    // 1. Emit the verification queue as JSON (what ExplainTI+ renders).
    let mut items_json = Vec::new();
    let mut sim_items = Vec::new();
    for &idx in &queue {
        let p = model.predict(TaskKind::Type, idx);
        let (cref, gold) = cols[idx];
        let table = &dataset.collection.tables[cref.table];
        let col = &table.columns[cref.col];
        items_json.push(serde_json::json!({
            "table_title": table.title,
            "column_header": col.header,
            "cells": col.cells,
            "predicted": dataset.collection.type_labels[p.label],
            "gold": dataset.collection.type_labels[gold],
            "confidence": p.confidence,
            "explanations": p.explanation,
        }));

        // 2. Same items feed the expert-time simulation.
        let ctx = JudgeContext::from_column(
            &table.title,
            col,
            &dataset.col_provenance[idx],
            p.label,
            gold,
        );
        let span_texts: Vec<String> =
            p.explanation.top_local_diverse(3).into_iter().map(|s| s.text.clone()).collect();
        let mut supporting: Vec<usize> =
            p.explanation.top_global(1).iter().map(|g| g.label).collect();
        supporting.extend(p.explanation.top_structural(1).iter().map(|n| n.label));
        let expl_tokens = span_texts.iter().map(|t| t.split_whitespace().count()).sum::<usize>()
            + supporting.len() * 8;
        sim_items.push(VerificationItem {
            input_tokens: model.tasks()[task].data.samples[idx].encoded.len,
            explanation_tokens: expl_tokens,
            ctx,
            expl: JudgedExplanation { span_texts, supporting_labels: supporting },
        });
    }

    let json = serde_json::to_string_pretty(&items_json).unwrap();
    std::fs::write("verification_queue.json", &json).unwrap();
    println!("wrote verification_queue.json ({} items, {} bytes)", queue.len(), json.len());

    let mut rng = SmallRng::seed_from_u64(3);
    let r = simulate(&sim_items, &CostModel::default(), 0.15, &mut rng);
    println!(
        "expert simulation: {:.1}s/sample without explanations, {:.1}s with ({:.0}% saving)",
        r.time_without,
        r.time_with,
        r.saving() * 100.0
    );
}
