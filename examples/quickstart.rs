//! Quickstart: train ExplainTI on a small synthetic Web-table corpus and
//! predict one column's type with multi-view explanations.
//!
//! Run with: `cargo run --release --example quickstart`

use explainti::prelude::*;

fn main() {
    // 1. A seeded Web-table benchmark (see explainti-corpus for how it
    //    mirrors WikiTable's structure).
    let dataset = generate_wiki(&WikiConfig { num_tables: 150, ..Default::default() });
    println!(
        "corpus: {} tables, {} column types, {} relation types",
        dataset.collection.tables.len(),
        dataset.collection.type_labels.len(),
        dataset.collection.relation_labels.len()
    );

    // 2. Build and fine-tune the model (LE + GE + SE all enabled).
    let mut cfg = ExplainTiConfig::bert_like(2048, 32);
    cfg.epochs = 3;
    let mut model = ExplainTi::new(&dataset, cfg);
    println!("model: {} trainable weights", model.num_weights());
    let report = model.train();
    println!("trained in {:?} (best epoch {})", report.total_time, report.best_epoch);

    // 3. Evaluate both tasks.
    for kind in [TaskKind::Type, TaskKind::Relation] {
        let f1 = model.evaluate(kind, Split::Test);
        println!("{kind:9} test F1 (micro/macro/weighted): {f1}");
    }

    // 4. Predict a test column with explanations.
    let test_sample = {
        let task = model.task_index(TaskKind::Type).unwrap();
        model.tasks()[task].data.test_idx[0]
    };
    let p = model.predict(TaskKind::Type, test_sample);
    let label = &dataset.collection.type_labels[p.label];
    println!("\nprediction: {label} (confidence {:.2})", p.confidence);
    if let Some(span) = p.explanation.top_local(1).first() {
        println!("  local     : \"{}\" (RS {:.3})", span.text, span.relevance);
    }
    if let Some(g) = p.explanation.top_global(1).first() {
        println!(
            "  global    : training sample #{} with label {} (IS {:.3})",
            g.sample, dataset.collection.type_labels[g.label], g.influence
        );
    }
    if let Some(n) = p.explanation.top_structural(1).first() {
        println!(
            "  structural: neighbour #{} with label {} (AS {:.3})",
            n.node, dataset.collection.type_labels[n.label], n.attention
        );
    }
}
