#!/bin/bash
# Regenerates every table and figure of the paper (EXPERIMENTS.md inputs).
set -u
cd "$(dirname "$0")"
mkdir -p bench-results
run() {
  local name=$1; shift
  echo "=== $name ($(date +%T)) ==="
  "$@" > bench-results/$name.txt 2> bench-results/$name.log
  echo "=== $name done ($(date +%T)) ==="
}
run table2 cargo run --release -q -p explainti-bench --bin table2
run table3 cargo run --release -q -p explainti-bench --bin table3
run table5 cargo run --release -q -p explainti-bench --bin table5
run online_sim cargo run --release -q -p explainti-bench --bin online_sim
run fig6 cargo run --release -q -p explainti-bench --bin fig6
run fig5 cargo run --release -q -p explainti-bench --bin fig5
run fig3 cargo run --release -q -p explainti-bench --bin fig3
EXPLAINTI_SCALE=${T4_SCALE:-0.75} run table4 cargo run --release -q -p explainti-bench --bin table4
EXPLAINTI_SCALE=${F7_SCALE:-0.75} run fig7 cargo run --release -q -p explainti-bench --bin fig7
run ablation cargo run --release -q -p explainti-bench --bin ablation
echo "ALL EXPERIMENTS DONE"
