//! Serialisation contracts: dataset JSON round trips (the CLI's storage
//! format) and weight-checkpoint encoding.

use explainti::core::{decode_weights, encode_weights};
use explainti::prelude::*;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

#[test]
fn wiki_dataset_json_roundtrip_preserves_everything() {
    let d = generate_wiki(&WikiConfig { num_tables: 40, seed: 3001, ..Default::default() });
    let json = serde_json::to_string(&d).unwrap();
    let back: Dataset = serde_json::from_str(&json).unwrap();
    assert_eq!(back.collection.tables, d.collection.tables);
    assert_eq!(back.collection.type_labels, d.collection.type_labels);
    assert_eq!(back.collection.relation_labels, d.collection.relation_labels);
    assert_eq!(back.table_split.len(), d.table_split.len());
    assert_eq!(back.col_provenance.len(), d.col_provenance.len());
    // Derived views agree.
    assert_eq!(back.statistics().num_type_samples, d.statistics().num_type_samples);
    assert_eq!(back.type_sample_indices(Split::Test), d.type_sample_indices(Split::Test));
}

#[test]
fn git_dataset_json_roundtrip() {
    let d = generate_git(&GitConfig { num_tables: 20, seed: 3002, ..Default::default() });
    let json = serde_json::to_string(&d).unwrap();
    let back: Dataset = serde_json::from_str(&json).unwrap();
    assert_eq!(back.collection.tables, d.collection.tables);
}

#[test]
fn model_rebuilt_from_serialised_dataset_accepts_checkpoint() {
    // The CLI's contract: (corpus.json, weights.bin) reconstructs the
    // exact model because tokenizer and parameter layout derive
    // deterministically from the corpus + config.
    let d = generate_wiki(&WikiConfig { num_tables: 40, seed: 3003, ..Default::default() });
    let mut cfg = ExplainTiConfig::bert_like(2048, 24);
    cfg.epochs = 1;
    cfg.use_se = false;
    let mut trained = ExplainTi::new(&d, cfg.clone());
    trained.train();
    let weights = trained.export_all_weights();
    let p_before = trained.predict(TaskKind::Type, 0);

    let roundtripped: Dataset = serde_json::from_str(&serde_json::to_string(&d).unwrap()).unwrap();
    let mut rebuilt = ExplainTi::new(&roundtripped, cfg);
    rebuilt.import_all_weights(&weights);
    let p_after = rebuilt.predict(TaskKind::Type, 0);
    assert_eq!(p_before.label, p_after.label);
    assert_eq!(p_before.probs, p_after.probs);
}

/// Checkpoint encoding round-trips arbitrary finite weight vectors.
#[test]
fn checkpoint_roundtrip() {
    let mut rng = SmallRng::seed_from_u64(3004);
    for case in 0..32 {
        // Cover the empty vector explicitly, then random lengths.
        let n = if case == 0 { 0 } else { rng.gen_range(1..500) };
        let weights: Vec<f32> = (0..n).map(|_| rng.gen_range(-1e6f32..1e6)).collect();
        let bytes = encode_weights(&weights);
        let back = decode_weights(&bytes).unwrap();
        assert_eq!(back, weights);
    }
}

/// Any corruption of the length header is detected.
#[test]
fn checkpoint_header_corruption_detected() {
    let mut rng = SmallRng::seed_from_u64(3005);
    for _ in 0..32 {
        let n = rng.gen_range(1..64);
        let delta = rng.gen_range(1u64..1000);
        let weights = vec![1.0f32; n];
        let mut bytes = encode_weights(&weights).to_vec();
        // Length field lives at offset 8..16 (after the magic).
        let stored = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
        bytes[8..16].copy_from_slice(&(stored + delta).to_le_bytes());
        assert!(decode_weights(&bytes).is_err());
    }
}
