//! Cross-crate integration: the full ExplainTI pipeline on a small
//! synthetic corpus — pre-train, fine-tune, evaluate, explain.

use explainti::prelude::*;

fn small_wiki() -> Dataset {
    generate_wiki(&WikiConfig { num_tables: 100, seed: 1001, ..Default::default() })
}

#[test]
fn full_pipeline_beats_majority_class() {
    let dataset = small_wiki();
    let mut cfg = ExplainTiConfig::bert_like(2048, 24);
    cfg.epochs = 3;
    cfg.top_k = 4;
    cfg.sample_r = 8;
    let mut model = ExplainTi::new(&dataset, cfg);
    model.pretrain(&explainti::encoder::mlm::PretrainConfig { epochs: 1, ..Default::default() });
    model.train();

    // Majority-class micro-F1 on the test split.
    let cols = dataset.collection.annotated_columns();
    let test: Vec<usize> =
        (0..cols.len()).filter(|&i| dataset.table_split[cols[i].0.table] == Split::Test).collect();
    let mut counts = std::collections::HashMap::new();
    for &i in &test {
        *counts.entry(cols[i].1).or_insert(0usize) += 1;
    }
    let majority = *counts.values().max().unwrap() as f64 / test.len() as f64;

    let f1 = model.evaluate(TaskKind::Type, Split::Test);
    assert!(
        f1.micro > majority + 0.05,
        "model micro {} did not beat majority {majority}",
        f1.micro
    );
}

#[test]
fn explanations_are_complete_and_serialisable() {
    let dataset = small_wiki();
    let mut cfg = ExplainTiConfig::roberta_like(2048, 24);
    cfg.epochs = 2;
    let mut model = ExplainTi::new(&dataset, cfg);
    model.train();

    let task = model.task_index(TaskKind::Type).unwrap();
    let idx = model.tasks()[task].data.test_idx[0];
    let p = model.predict(TaskKind::Type, idx);

    assert!(!p.explanation.local.is_empty(), "local view missing");
    assert!(!p.explanation.global.is_empty(), "global view missing");
    assert!(!p.explanation.structural.is_empty(), "structural view missing");
    assert!(p.confidence > 0.0 && p.confidence <= 1.0);

    // Every view's scores are normalised distributions.
    let rs: f32 = p.explanation.local.iter().map(|s| s.relevance).sum();
    let is_: f32 = p.explanation.global.iter().map(|g| g.influence).sum();
    let as_: f32 = p.explanation.structural.iter().map(|n| n.attention).sum();
    assert!((rs - 1.0).abs() < 1e-3, "RS sum {rs}");
    assert!((is_ - 1.0).abs() < 1e-3, "IS sum {is_}");
    assert!((as_ - 1.0).abs() < 1e-3, "AS sum {as_}");

    // JSON round trip (the ExplainTI+ interface contract).
    let json = serde_json::to_string(&p).unwrap();
    let back: explainti::core::Prediction = serde_json::from_str(&json).unwrap();
    assert_eq!(back.label, p.label);
    assert_eq!(back.explanation.local.len(), p.explanation.local.len());
}

#[test]
fn prediction_is_deterministic_at_inference() {
    let dataset = small_wiki();
    let mut cfg = ExplainTiConfig::bert_like(2048, 24);
    cfg.epochs = 1;
    cfg.use_se = false; // SE samples neighbours stochastically by design.
    let mut model = ExplainTi::new(&dataset, cfg);
    model.train();
    let a = model.predict(TaskKind::Type, 0);
    let b = model.predict(TaskKind::Type, 0);
    assert_eq!(a.label, b.label);
    assert_eq!(a.probs, b.probs);
}

#[test]
fn git_corpus_trains_type_only() {
    let dataset = generate_git(&GitConfig { num_tables: 60, seed: 1002, ..Default::default() });
    let mut cfg = ExplainTiConfig::bert_like(2048, 24);
    cfg.epochs = 2;
    let mut model = ExplainTi::new(&dataset, cfg);
    assert!(model.task_index(TaskKind::Relation).is_none());
    model.train();
    let f1 = model.evaluate(TaskKind::Type, Split::Test);
    assert!(f1.micro > 0.2, "git micro {}", f1.micro);
}

#[test]
fn encoder_checkpoint_transfers_between_models() {
    let dataset = small_wiki();
    let mut cfg = ExplainTiConfig::bert_like(2048, 24);
    cfg.epochs = 1;
    let mut a = ExplainTi::new(&dataset, cfg.clone());
    a.pretrain(&explainti::encoder::mlm::PretrainConfig { epochs: 1, ..Default::default() });
    let ckpt = a.export_encoder();

    let mut b = ExplainTi::new(&dataset, cfg);
    b.load_encoder(&ckpt);
    assert_eq!(b.export_encoder(), ckpt);
}
