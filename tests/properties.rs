//! Property-style tests on the core data structures and invariants of
//! the reproduction: each test draws many random cases from a seeded
//! generator and asserts the invariant on every one (deterministic, no
//! external test framework).

use explainti::ann::{BruteForceIndex, HnswConfig, HnswIndex, Metric, VectorIndex};
use explainti::metrics::f1_scores;
use explainti::nn::{kl_divergence, softmax, Tensor};
use explainti::table::{Column, ColumnGraph, Table, TableCollection};
use explainti::tokenizer::{encode_column, Tokenizer, CLS, PAD, SEP};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const CASES: usize = 64;

fn random_word(rng: &mut SmallRng, alphabet: &[u8], len: std::ops::Range<usize>) -> String {
    let n = rng.gen_range(len);
    (0..n).map(|_| alphabet[rng.gen_range(0..alphabet.len())] as char).collect()
}

/// Softmax always yields a probability distribution, whatever the logits.
#[test]
fn softmax_is_distribution() {
    let mut rng = SmallRng::seed_from_u64(1001);
    for _ in 0..CASES {
        let n = rng.gen_range(1..32);
        let xs: Vec<f32> = (0..n).map(|_| rng.gen_range(-50.0f32..50.0)).collect();
        let p = softmax(&xs);
        assert_eq!(p.len(), xs.len());
        assert!(p.iter().all(|&v| (0.0..=1.0001).contains(&v)));
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4, "sum {sum}");
    }
}

/// KL divergence is non-negative and zero iff the distributions match.
#[test]
fn kl_is_nonnegative() {
    let mut rng = SmallRng::seed_from_u64(1002);
    for _ in 0..CASES {
        let n = rng.gen_range(2..16);
        let a: Vec<f32> = (0..n).map(|_| rng.gen_range(-5.0f32..5.0)).collect();
        let b: Vec<f32> = (0..n).map(|_| rng.gen_range(-5.0f32..5.0)).collect();
        let p = softmax(&a);
        let q = softmax(&b);
        assert!(kl_divergence(&p, &q) >= 0.0);
        assert!(kl_divergence(&p, &p) < 1e-5);
    }
}

/// (A·B)ᵀ = Bᵀ·Aᵀ for arbitrary small matrices.
#[test]
fn matmul_transpose_identity() {
    let mut rng = SmallRng::seed_from_u64(1003);
    for _ in 0..CASES {
        let (r, k, c) = (rng.gen_range(1..5), rng.gen_range(1..5), rng.gen_range(1..5));
        let a = Tensor::from_vec(r, k, (0..r * k).map(|_| rng.gen_range(-2.0f32..2.0)).collect());
        let b = Tensor::from_vec(k, c, (0..k * c).map(|_| rng.gen_range(-2.0f32..2.0)).collect());
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            assert!((x - y).abs() < 1e-4);
        }
    }
}

/// Column encoding always fits the budget, starts with [CLS], ends the
/// live region with [SEP], and pads the rest.
#[test]
fn encoding_respects_frame() {
    let mut rng = SmallRng::seed_from_u64(1004);
    for _ in 0..CASES {
        let words = rng.gen_range(1..=4);
        let title = (0..words)
            .map(|_| random_word(&mut rng, b"abcdefghijklmnopqrstuvwxyz", 1..9))
            .collect::<Vec<_>>()
            .join(" ");
        let header = random_word(&mut rng, b"abcdefghijklmnopqrstuvwxyz", 1..11);
        let num_cells = rng.gen_range(0..20);
        let cells: Vec<String> = (0..num_cells)
            .map(|_| random_word(&mut rng, b"abcdefghijklmnopqrstuvwxyz0123456789", 1..13))
            .collect();
        let max_len = rng.gen_range(8..64);

        let tok = Tokenizer::train([title.as_str(), header.as_str()], 512);
        let cell_refs: Vec<&str> = cells.iter().map(String::as_str).collect();
        let e = encode_column(&tok, &title, &header, &cell_refs, max_len);
        assert_eq!(e.ids.len(), max_len);
        assert!(e.len <= max_len);
        assert_eq!(e.ids[0], CLS);
        assert_eq!(e.ids[e.len - 1], SEP);
        assert!(e.ids[e.len..].iter().all(|&i| i == PAD));
    }
}

/// HNSW self-queries return the inserted vector first.
#[test]
fn hnsw_self_query() {
    for seed in 0u64..50 {
        let mut rng = SmallRng::seed_from_u64(seed);
        let vectors: Vec<Vec<f32>> =
            (0..60).map(|_| (0..8).map(|_| rng.gen_range(-1.0f32..1.0)).collect()).collect();
        let mut idx = HnswIndex::new(Metric::Cosine, HnswConfig::default());
        for (i, v) in vectors.iter().enumerate() {
            idx.add(i, v);
        }
        let probe = (seed as usize * 7) % vectors.len();
        let res = idx.search(&vectors[probe], 1);
        assert_eq!(res[0].id, probe, "seed {seed}");
    }
}

/// F1 scores are always within [0, 1] and micro equals accuracy.
#[test]
fn f1_bounds() {
    let mut rng = SmallRng::seed_from_u64(1006);
    for _ in 0..CASES {
        let n = rng.gen_range(1..100);
        let pairs: Vec<(usize, usize)> =
            (0..n).map(|_| (rng.gen_range(0..6), rng.gen_range(0..6))).collect();
        let preds: Vec<usize> = pairs.iter().map(|p| p.0).collect();
        let actual: Vec<usize> = pairs.iter().map(|p| p.1).collect();
        let f1 = f1_scores(&preds, &actual, 6);
        for v in [f1.micro, f1.macro_, f1.weighted] {
            assert!((0.0..=1.0).contains(&v));
        }
        let acc = pairs.iter().filter(|(p, a)| p == a).count() as f64 / pairs.len() as f64;
        assert!((f1.micro - acc).abs() < 1e-9);
    }
}

/// Neighbour sampling returns exactly `r` nodes whenever the node has
/// any eligible neighbour, and all returned nodes are real neighbours.
#[test]
fn neighbor_sampling_contract() {
    let mut rng = SmallRng::seed_from_u64(1007);
    for _ in 0..CASES {
        let num_tables = rng.gen_range(2..12);
        let r = rng.gen_range(1..20);
        let tables: Vec<Table> = (0..num_tables)
            .map(|i| {
                Table::new(
                    format!("title {}", i % 3),
                    vec![Column::new(format!("header {}", i % 2), vec!["x".into()], Some(0))],
                )
            })
            .collect();
        let collection =
            TableCollection { tables, type_labels: vec!["t".into()], relation_labels: vec![] };
        let (graph, _) = ColumnGraph::build_type(&collection);
        for node in 0..graph.num_nodes() {
            let sampled = graph.sample_neighbors(node, r, None, &mut rng);
            let hood = graph.neighbors(node);
            if hood.is_empty() {
                assert!(sampled.is_empty());
            } else {
                assert_eq!(sampled.len(), r);
                assert!(sampled.iter().all(|n| hood.contains(n)));
            }
        }
    }
}

/// Brute-force search returns results in non-increasing similarity
/// order for any vector set.
#[test]
fn brute_force_ordering() {
    let mut rng = SmallRng::seed_from_u64(1008);
    for _ in 0..CASES {
        let n = rng.gen_range(1..40);
        let vectors: Vec<Vec<f32>> =
            (0..n).map(|_| (0..4).map(|_| rng.gen_range(-1.0f32..1.0)).collect()).collect();
        let mut idx = BruteForceIndex::new(Metric::Cosine);
        for (i, v) in vectors.iter().enumerate() {
            idx.add(i, v);
        }
        let res = idx.search(&vectors[0], vectors.len());
        for pair in res.windows(2) {
            assert!(pair[0].similarity >= pair[1].similarity - 1e-6);
        }
    }
}
