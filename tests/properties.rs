//! Property-based tests (proptest) on the core data structures and
//! invariants of the reproduction.

use explainti::ann::{BruteForceIndex, HnswConfig, HnswIndex, Metric, VectorIndex};
use explainti::metrics::f1_scores;
use explainti::nn::{kl_divergence, softmax, Tensor};
use explainti::table::{ColumnGraph, Table, TableCollection};
use explainti::tokenizer::{encode_column, Tokenizer, CLS, PAD, SEP};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Softmax always yields a probability distribution, whatever the
    /// logits.
    #[test]
    fn softmax_is_distribution(xs in proptest::collection::vec(-50.0f32..50.0, 1..32)) {
        let p = softmax(&xs);
        prop_assert_eq!(p.len(), xs.len());
        prop_assert!(p.iter().all(|&v| (0.0..=1.0001).contains(&v)));
        let sum: f32 = p.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-4);
    }

    /// KL divergence is non-negative and zero iff the distributions match.
    #[test]
    fn kl_is_nonnegative(a in proptest::collection::vec(-5.0f32..5.0, 2..16),
                          b in proptest::collection::vec(-5.0f32..5.0, 2..16)) {
        let n = a.len().min(b.len());
        let p = softmax(&a[..n]);
        let q = softmax(&b[..n]);
        prop_assert!(kl_divergence(&p, &q) >= 0.0);
        prop_assert!(kl_divergence(&p, &p) < 1e-5);
    }

    /// (A·B)ᵀ = Bᵀ·Aᵀ for arbitrary small matrices.
    #[test]
    fn matmul_transpose_identity(
        r in 1usize..5, k in 1usize..5, c in 1usize..5,
        seed in 0u64..1000,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let a = Tensor::from_vec(r, k, (0..r * k).map(|_| rng.gen_range(-2.0f32..2.0)).collect());
        let b = Tensor::from_vec(k, c, (0..k * c).map(|_| rng.gen_range(-2.0f32..2.0)).collect());
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        for (x, y) in left.as_slice().iter().zip(right.as_slice()) {
            prop_assert!((x - y).abs() < 1e-4);
        }
    }

    /// Column encoding always fits the budget, starts with [CLS], ends
    /// the live region with [SEP], and pads the rest.
    #[test]
    fn encoding_respects_frame(
        title in "[a-z]{1,12}( [a-z]{1,8}){0,3}",
        header in "[a-z]{1,10}",
        cells in proptest::collection::vec("[a-z0-9]{1,12}", 0..20),
        max_len in 8usize..64,
    ) {
        let tok = Tokenizer::train([title.as_str(), header.as_str()], 512);
        let cell_refs: Vec<&str> = cells.iter().map(String::as_str).collect();
        let e = encode_column(&tok, &title, &header, &cell_refs, max_len);
        prop_assert_eq!(e.ids.len(), max_len);
        prop_assert!(e.len <= max_len);
        prop_assert_eq!(e.ids[0], CLS);
        prop_assert_eq!(e.ids[e.len - 1], SEP);
        prop_assert!(e.ids[e.len..].iter().all(|&i| i == PAD));
    }

    /// HNSW self-queries return the inserted vector first.
    #[test]
    fn hnsw_self_query(seed in 0u64..50) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let vectors: Vec<Vec<f32>> = (0..60)
            .map(|_| (0..8).map(|_| rng.gen_range(-1.0f32..1.0)).collect())
            .collect();
        let mut idx = HnswIndex::new(Metric::Cosine, HnswConfig::default());
        for (i, v) in vectors.iter().enumerate() {
            idx.add(i, v);
        }
        let probe = (seed as usize * 7) % vectors.len();
        let res = idx.search(&vectors[probe], 1);
        prop_assert_eq!(res[0].id, probe);
    }

    /// F1 scores are always within [0, 1] and micro equals accuracy.
    #[test]
    fn f1_bounds(pairs in proptest::collection::vec((0usize..6, 0usize..6), 1..100)) {
        let preds: Vec<usize> = pairs.iter().map(|p| p.0).collect();
        let actual: Vec<usize> = pairs.iter().map(|p| p.1).collect();
        let f1 = f1_scores(&preds, &actual, 6);
        for v in [f1.micro, f1.macro_, f1.weighted] {
            prop_assert!((0.0..=1.0).contains(&v));
        }
        let acc = pairs.iter().filter(|(p, a)| p == a).count() as f64 / pairs.len() as f64;
        prop_assert!((f1.micro - acc).abs() < 1e-9);
    }

    /// Neighbour sampling returns exactly `r` nodes whenever the node has
    /// any eligible neighbour, and all returned nodes are real neighbours.
    #[test]
    fn neighbor_sampling_contract(num_tables in 2usize..12, r in 1usize..20, seed in 0u64..100) {
        use explainti::table::Column;
        use rand::SeedableRng;
        let tables: Vec<Table> = (0..num_tables)
            .map(|i| Table::new(
                format!("title {}", i % 3),
                vec![Column::new(format!("header {}", i % 2), vec!["x".into()], Some(0))],
            ))
            .collect();
        let collection = TableCollection {
            tables,
            type_labels: vec!["t".into()],
            relation_labels: vec![],
        };
        let (graph, _) = ColumnGraph::build_type(&collection);
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        for node in 0..graph.num_nodes() {
            let sampled = graph.sample_neighbors(node, r, None, &mut rng);
            let hood = graph.neighbors(node);
            if hood.is_empty() {
                prop_assert!(sampled.is_empty());
            } else {
                prop_assert_eq!(sampled.len(), r);
                prop_assert!(sampled.iter().all(|n| hood.contains(n)));
            }
        }
    }

    /// Brute-force search returns results in non-increasing similarity
    /// order for any vector set.
    #[test]
    fn brute_force_ordering(vectors in proptest::collection::vec(
        proptest::collection::vec(-1.0f32..1.0, 4), 1..40,
    )) {
        let mut idx = BruteForceIndex::new(Metric::Cosine);
        for (i, v) in vectors.iter().enumerate() {
            idx.add(i, v);
        }
        let res = idx.search(&vectors[0], vectors.len());
        for pair in res.windows(2) {
            prop_assert!(pair[0].similarity >= pair[1].similarity - 1e-6);
        }
    }
}
