//! `explainti` — command-line interface for the ExplainTI reproduction.
//!
//! ```text
//! explainti generate  --out corpus.json [--tables N] [--git]
//! explainti train     --corpus corpus.json --out model-dir [--epochs N] [--roberta]
//!                     [--report-out report.json]
//! explainti interpret --model model-dir [--json] [--top-k N] file.csv [file2.csv …]
//! explainti evaluate  --model model-dir
//! explainti serve     --model model-dir [--addr host:port] [--workers N] [--max-batch N]
//!                     [--queue-cap N] [--cache-cap N] [--deadline-ms N] [--top-k N]
//!                     [--max-conns N] [--read-timeout-ms MS] [--idle-timeout-ms MS]
//!                     [--dispatchers N] [--shards N] [--replicas N] [--no-swap-verify]
//! ```
//!
//! Every command accepts `--trace-out <trace.jsonl>` to stream telemetry
//! span events as JSONL, and honours `EXPLAINTI_LOG=off|info|debug`.
//! Every command also accepts `--threads <N>` to size the shared kernel
//! compute pool (default: `EXPLAINTI_THREADS`, then all cores). For
//! `serve` the two thread knobs are distinct: `--workers` bounds how many
//! requests are processed concurrently (HTTP/queue concurrency), while
//! `--threads` bounds how many cores each micro-batch forward may use.
//! Results never depend on `--threads` — kernels are deterministic by
//! construction — only latency does.
//! Unless telemetry is off, a per-stage latency table prints to stderr at
//! the end of the run.
//!
//! `train` writes the model-directory layout (corpus snapshot, encoder
//! variant, weight checkpoint) that `interpret`, `evaluate`, and `serve`
//! all load — tokenizers and parameter layouts derive deterministically
//! from the corpus + config. `interpret --json` emits one
//! [`explainti::api::InterpretTableResponse`] JSON line per input file,
//! the same DTOs (and bytes) the server returns for the same model.

mod flags;

use explainti::api::{ColumnPrediction, InterpretTableRequest, InterpretTableResponse};
use explainti::corpus::{generate_git, generate_wiki, GitConfig, WikiConfig};
use explainti::prelude::*;
use explainti::table::table_from_csv_file;
use flags::{CommandSpec, Parsed};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

// ---- Command specs ----------------------------------------------------

fn with_common(spec: CommandSpec) -> CommandSpec {
    spec.value("trace-out", "FILE", "stream telemetry span events to FILE as JSONL")
        .value("threads", "N", "kernel compute threads (default: EXPLAINTI_THREADS or all cores)")
        .value(
            "failpoints",
            "SPEC",
            "activate fault-injection sites, e.g. 'serve.worker.panic=times(1)' \
             (also: EXPLAINTI_FAILPOINTS env)",
        )
}

fn all_specs() -> Vec<CommandSpec> {
    vec![
        with_common(
            CommandSpec::new("generate", "generate a synthetic benchmark corpus")
                .required_value("out", "FILE", "where to write the corpus JSON")
                .value("tables", "N", "number of tables (default 600)")
                .switch("git", "generate the Git-schema corpus instead of Wiki"),
        ),
        with_common(
            CommandSpec::new("train", "train a model and write a model directory")
                .required_value("corpus", "FILE", "corpus JSON from `generate`")
                .required_value("out", "DIR", "model directory to write")
                .value("epochs", "N", "training epochs (default from config)")
                .value("report-out", "FILE", "write the training report JSON here")
                .switch("roberta", "use the RoBERTa-like encoder variant"),
        ),
        with_common(
            CommandSpec::new("interpret", "predict column types for CSV files")
                .required_value("model", "DIR", "model directory from `train`")
                .value("top-k", "N", "explanations per view in --json output (default 3)")
                .switch("json", "emit one api::InterpretTableResponse JSON line per file")
                .positionals("file.csv", 1),
        ),
        with_common(
            CommandSpec::new("evaluate", "report test-split F1 for each task").required_value(
                "model",
                "DIR",
                "model directory from `train`",
            ),
        ),
        with_common(
            CommandSpec::new("serve", "run the micro-batching HTTP inference server")
                .required_value("model", "DIR", "model directory from `train`")
                .value("addr", "HOST:PORT", "bind address (default 127.0.0.1:7431)")
                .value("workers", "N", "prediction worker threads (default 2)")
                .value("max-batch", "N", "max columns per micro-batch (default 8)")
                .value("queue-cap", "N", "bounded queue capacity; full → 503 (default 64)")
                .value("cache-cap", "N", "LRU response cache capacity (default 256)")
                .value("deadline-ms", "MS", "per-request deadline; late → 504 (default 30000)")
                .value("top-k", "N", "explanations per view in responses (default 3)")
                .value("slo-window-s", "S", "sliding SLO window for serve.slo.* (default 60)")
                .value("max-conns", "N", "open-connection hard limit; over → 429 (default 1024)")
                .value(
                    "read-timeout-ms",
                    "MS",
                    "incomplete-request deadline; over → 408 (default 10000)",
                )
                .value(
                    "idle-timeout-ms",
                    "MS",
                    "idle keep-alive connection timeout (default 60000)",
                )
                .value(
                    "dispatchers",
                    "N",
                    "request dispatcher threads (default: derived from workers)",
                )
                .value("shards", "N", "explanation-store shards per task (default 1)")
                .value("replicas", "N", "replicas per stored embedding, 1..=shards (default 1)")
                .switch("no-swap-verify", "skip the smoke prediction before a swap commits")
                .switch("quantized", "serve inference on the int8 quantized path"),
        ),
    ]
}

fn usage(specs: &[CommandSpec]) -> ExitCode {
    eprintln!("usage:");
    for spec in specs {
        eprintln!("  {}", spec.usage().trim_end().replace('\n', "\n  "));
    }
    eprintln!(
        "  analyze [--workspace | PATH…] — run the repo invariant lints (see `analyze --help`)"
    );
    eprintln!(
        "\nall commands honour EXPLAINTI_LOG=off|info|debug (default info)\n\
         and print a per-stage latency table to stderr unless telemetry is off"
    );
    ExitCode::from(2)
}

// ---- Commands ---------------------------------------------------------

fn cmd_generate(args: &Parsed) -> Result<ExitCode, String> {
    let _span = explainti_obs::span!("cli.generate");
    let out = args.get("out").expect("required");
    let tables = args.get_or("tables", 600usize).map_err(|e| e.to_string())?;
    let dataset = if args.is_set("git") {
        generate_git(&GitConfig { num_tables: tables, ..Default::default() })
    } else {
        generate_wiki(&WikiConfig { num_tables: tables, ..Default::default() })
    };
    let json = serde_json::to_string(&dataset).map_err(|e| format!("serialise corpus: {e:?}"))?;
    std::fs::write(out, json).map_err(|e| format!("write {out}: {e}"))?;
    let st = dataset.statistics();
    println!(
        "wrote {out}: {} tables, {} type labels, {} relation labels",
        st.num_tables, st.num_type_labels, st.num_relation_labels
    );
    Ok(ExitCode::SUCCESS)
}

fn load_dataset(path: &Path) -> Result<Dataset, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path:?}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("parse {path:?}: {e}"))
}

fn load_model(args: &Parsed) -> Result<(ExplainTi, Dataset), String> {
    let dir = PathBuf::from(args.get("model").expect("required"));
    ExplainTi::load_from_dir(&dir).map_err(|e| format!("load model from {dir:?}: {e}"))
}

fn cmd_train(args: &Parsed) -> Result<ExitCode, String> {
    let _span = explainti_obs::span!("cli.train");
    let corpus = args.get("corpus").expect("required");
    let out = args.get("out").expect("required");
    let dataset = load_dataset(Path::new(corpus))?;
    let mut cfg = if args.is_set("roberta") {
        ExplainTiConfig::roberta_like(2048, 32)
    } else {
        ExplainTiConfig::bert_like(2048, 32)
    };
    if let Some(epochs) = args.get_opt("epochs").map_err(|e| e.to_string())? {
        cfg.epochs = epochs;
    }
    let mut model = ExplainTi::new(&dataset, cfg);
    println!("training ({} weights)…", model.num_weights());
    let report = model.train();
    println!("trained in {:?} (best epoch {})", report.total_time, report.best_epoch);
    if let Some(path) = args.get("report-out") {
        let json = serde_json::to_string_pretty(&report)
            .map_err(|e| format!("serialise report: {e:?}"))?;
        std::fs::write(path, json).map_err(|e| format!("write report {path}: {e}"))?;
        println!("wrote training report to {path}");
    }
    for kind in [TaskKind::Type, TaskKind::Relation] {
        if model.task_index(kind).is_some() {
            let f1 = model.evaluate(kind, Split::Test);
            println!("{kind:9} test F1: {f1}");
        }
    }
    let dir = PathBuf::from(out);
    model.save_to_dir(&dir, &dataset).map_err(|e| format!("save model to {dir:?}: {e}"))?;
    println!("saved model to {dir:?}");
    Ok(ExitCode::SUCCESS)
}

fn cmd_interpret(args: &Parsed) -> Result<ExitCode, String> {
    let _span = explainti_obs::span!("cli.interpret");
    let (model, dataset) = load_model(args)?;
    let labels = &dataset.collection.type_labels;
    let as_json = args.is_set("json");
    let top_k = args.get_or("top-k", explainti::api::DEFAULT_TOP_K).map_err(|e| e.to_string())?;
    let mut failures = 0usize;
    for file in &args.positional {
        let table = match table_from_csv_file(Path::new(file)) {
            Ok(Ok(t)) => t,
            Ok(Err(e)) => {
                eprintln!("{file}: {e}");
                failures += 1;
                continue;
            }
            Err(e) => {
                eprintln!("{file}: {e}");
                failures += 1;
                continue;
            }
        };
        if as_json {
            // One api::InterpretTableResponse per line — the same DTOs
            // (and bytes) `serve` answers with for this model.
            let req = InterpretTableRequest::from_table(&table);
            let mut columns = Vec::with_capacity(req.columns.len());
            for idx in 0..req.columns.len() {
                let col = req.column_request(idx);
                let cells: Vec<&str> = col.cells.iter().map(String::as_str).collect();
                let p = model.predict_column(&col.title, &col.header, &cells);
                columns.push(ColumnPrediction {
                    header: col.header,
                    prediction: explainti::api::PredictResponse::from_prediction(&p, labels, top_k),
                });
            }
            let resp = InterpretTableResponse {
                schema_version: explainti::api::SCHEMA_VERSION,
                title: req.title,
                columns,
            };
            println!("{}", serde_json::to_string(&resp).unwrap_or_default());
        } else {
            println!("{file} (\"{}\"):", table.title);
            for col in &table.columns {
                let cells = col.cell_refs();
                let p = model.predict_column(&table.title, &col.header, &cells);
                let label = &labels[p.label];
                println!("  {:<20} → {label} ({:.0}%)", col.header, p.confidence * 100.0);
                for span in p.explanation.top_local_diverse(1) {
                    println!("  {:<20}   evidence: \"{}\"", "", span.text);
                }
            }
        }
    }
    if failures > 0 && failures == args.positional.len() {
        return Ok(ExitCode::FAILURE);
    }
    Ok(ExitCode::SUCCESS)
}

fn cmd_evaluate(args: &Parsed) -> Result<ExitCode, String> {
    let _span = explainti_obs::span!("cli.evaluate");
    let (model, _dataset) = load_model(args)?;
    for kind in [TaskKind::Type, TaskKind::Relation] {
        if model.task_index(kind).is_some() {
            let f1 = model.evaluate(kind, Split::Test);
            println!("{kind:9} test F1 (micro/macro/weighted): {f1}");
        }
    }
    Ok(ExitCode::SUCCESS)
}

// ---- serve ------------------------------------------------------------

/// Set from the SIGINT handler; polled by the serve command so Ctrl-C
/// triggers the same graceful drain as POST /v1/shutdown.
static CTRL_C: AtomicBool = AtomicBool::new(false);

#[cfg(unix)]
fn install_ctrl_c_flag() {
    extern "C" fn on_sigint(_sig: i32) {
        // Only async-signal-safe work here: one atomic store.
        CTRL_C.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    // SAFETY: `signal(2)` is called once at startup from the main thread
    // with a handler that only performs an async-signal-safe atomic store.
    unsafe {
        signal(SIGINT, on_sigint);
    }
}

#[cfg(not(unix))]
fn install_ctrl_c_flag() {}

fn cmd_serve(args: &Parsed) -> Result<ExitCode, String> {
    let shards = args.get_or("shards", 1usize).map_err(|e| e.to_string())?;
    let replicas = args.get_or("replicas", 1usize).map_err(|e| e.to_string())?;
    if shards == 0 {
        return Err("--shards must be at least 1".to_string());
    }
    if replicas == 0 || replicas > shards {
        return Err(format!("--replicas must be in 1..={shards} (got {replicas})"));
    }
    let dir = PathBuf::from(args.get("model").expect("required"));
    let (mut model, dataset) = ExplainTi::load_from_dir_with(&dir, shards, replicas)
        .map_err(|e| format!("load model from {dir:?}: {e}"))?;
    let quantized = args.is_set("quantized");
    if quantized {
        model.enable_quantized();
    }
    let cfg = explainti::serve::ServeConfig {
        addr: args.get("addr").unwrap_or("127.0.0.1:7431").to_string(),
        workers: args.get_or("workers", 2usize).map_err(|e| e.to_string())?,
        queue_cap: args.get_or("queue-cap", 64usize).map_err(|e| e.to_string())?,
        max_batch: args.get_or("max-batch", 8usize).map_err(|e| e.to_string())?,
        cache_cap: args.get_or("cache-cap", 256usize).map_err(|e| e.to_string())?,
        deadline_ms: args.get_or("deadline-ms", 30_000u64).map_err(|e| e.to_string())?,
        top_k: args.get_or("top-k", explainti::api::DEFAULT_TOP_K).map_err(|e| e.to_string())?,
        // 0 = inherit the pool `main()` already sized from `--threads`.
        threads: 0,
        slo_window_s: args.get_or("slo-window-s", 60u64).map_err(|e| e.to_string())?,
        max_conns: args.get_or("max-conns", 1024usize).map_err(|e| e.to_string())?,
        read_timeout_ms: args.get_or("read-timeout-ms", 10_000u64).map_err(|e| e.to_string())?,
        idle_timeout_ms: args.get_or("idle-timeout-ms", 60_000u64).map_err(|e| e.to_string())?,
        // 0 = derive from workers (handlers block on worker replies).
        dispatchers: args.get_or("dispatchers", 0usize).map_err(|e| e.to_string())?,
        shards,
        replicas,
        swap_verify: !args.is_set("no-swap-verify"),
        quantized,
    };
    let labels = dataset.collection.type_labels.clone();
    let mut handle = explainti::serve::start(Arc::new(model), labels, cfg)
        .map_err(|e| format!("bind server: {e}"))?;
    println!(
        "listening on http://{} — POST /v1/interpret, GET /v1/healthz, GET /v1/metrics, \
         POST /v1/admin/swap, GET /v1/admin/store, POST /v1/admin/shutdown \
         (Ctrl-C drains gracefully)",
        handle.addr()
    );
    install_ctrl_c_flag();
    let shutdown_flag = handle.shutdown_flag();
    let watcher = std::thread::spawn(move || loop {
        if CTRL_C.load(Ordering::SeqCst) {
            shutdown_flag.store(true, Ordering::SeqCst);
        }
        if shutdown_flag.load(Ordering::SeqCst) {
            return;
        }
        std::thread::sleep(std::time::Duration::from_millis(100));
    });
    handle.join();
    let _ = watcher.join();
    println!("server drained and stopped");
    Ok(ExitCode::SUCCESS)
}

// ---- Entry point ------------------------------------------------------

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let specs = all_specs();
    let Some(cmd) = argv.first() else {
        return usage(&specs);
    };
    // `analyze` delegates to the analyzer crate's own flag grammar
    // (`--workspace`, `--format json`, `--bless`, …) rather than the
    // spec parser — it is a lint pass, not a model command.
    if cmd == "analyze" {
        return analyzer::cli::main_with_args(&argv[1..]);
    }
    let Some(spec) = specs.iter().find(|s| s.name() == cmd.as_str()) else {
        eprintln!("unknown command {cmd:?}\n");
        return usage(&specs);
    };
    let args = match spec.parse(&argv[1..]) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n");
            eprintln!("usage:\n  {}", spec.usage().trim_end().replace('\n', "\n  "));
            return ExitCode::from(2);
        }
    };
    if let Some(path) = args.get("trace-out") {
        if let Err(e) = explainti_obs::set_trace_file(Path::new(path)) {
            eprintln!("open trace file {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    // Size the shared kernel pool before any compute runs. `--threads`
    // wins over `EXPLAINTI_THREADS`, which wins over the core count.
    // (Serve's `--workers` is different: it bounds concurrent requests,
    // while this bounds CPU per forward.)
    match args.get_opt::<usize>("threads") {
        Ok(explicit) => {
            explainti::pool::configure(explainti::pool::Threads::resolve(explicit).get())
        }
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(2);
        }
    }
    // Fault injection: `--failpoints` layers on top of whatever
    // `EXPLAINTI_FAILPOINTS` already configured, and every trip is
    // mirrored into the obs counters for the final telemetry report.
    if let Some(spec) = args.get("failpoints") {
        match explainti::faults::configure_from_spec(spec) {
            Ok(n) if n > 0 => eprintln!("fault injection: {n} failpoint site(s) armed"),
            Ok(_) => {}
            Err(e) => {
                eprintln!("error: --failpoints: {e}");
                return ExitCode::from(2);
            }
        }
    }
    explainti::faults::set_observer(|site| {
        explainti_obs::add_counter(&format!("faults.hit.{site}"), 1);
    });
    let code = match cmd.as_str() {
        "generate" => cmd_generate(&args),
        "train" => cmd_train(&args),
        "interpret" => cmd_interpret(&args),
        "evaluate" => cmd_evaluate(&args),
        "serve" => cmd_serve(&args),
        _ => unreachable!("spec lookup covers every command"),
    };
    // Per-stage latency breakdown (the paper's Table V stages) on stderr.
    if explainti_obs::enabled() {
        let report = explainti_obs::report();
        if !report.is_empty() {
            eprintln!("{report}");
        }
    }
    explainti_obs::close_trace();
    match code {
        Ok(c) => c,
        Err(e) => {
            eprintln!("{e}");
            ExitCode::FAILURE
        }
    }
}
