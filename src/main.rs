//! `explainti` — command-line interface for the ExplainTI reproduction.
//!
//! ```text
//! explainti generate --out corpus.json [--tables N] [--git]
//! explainti train    --corpus corpus.json --out model-dir [--epochs N] [--roberta]
//!                    [--report-out report.json]
//! explainti interpret --model model-dir file.csv [file2.csv …]
//! explainti evaluate --model model-dir
//! ```
//!
//! Every command accepts `--trace-out <trace.jsonl>` to stream telemetry
//! span events as JSONL, and honours `EXPLAINTI_LOG=off|info|debug`.
//! Unless telemetry is off, a per-stage latency table prints to stderr at
//! the end of the run.
//!
//! `train` stores both the corpus snapshot and the weight checkpoint in
//! the model directory, so `interpret`/`evaluate` can rebuild the exact
//! model (tokenizers and parameter layouts derive deterministically from
//! the corpus + config).

use explainti::corpus::{generate_git, generate_wiki, Dataset, GitConfig, WikiConfig};
use explainti::prelude::*;
use explainti::table::table_from_csv_file;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  explainti generate --out <corpus.json> [--tables N] [--git]\n  \
         explainti train --corpus <corpus.json> --out <model-dir> [--epochs N] [--roberta]\n    \
         [--report-out <report.json>]\n  \
         explainti interpret --model <model-dir> <file.csv>…\n  \
         explainti evaluate --model <model-dir>\n\n\
         all commands accept --trace-out <trace.jsonl> (JSONL span events)\n\
         and honour EXPLAINTI_LOG=off|info|debug (default info)"
    );
    ExitCode::from(2)
}

/// Tiny flag parser: collects `--key value` pairs and positional args.
struct Args {
    flags: std::collections::HashMap<String, String>,
    bools: std::collections::HashSet<String>,
    positional: Vec<String>,
}

/// Flags that never take a value.
const BOOL_FLAGS: &[&str] = &["git", "roberta"];

fn parse_args(args: &[String]) -> Args {
    let mut flags = std::collections::HashMap::new();
    let mut bools = std::collections::HashSet::new();
    let mut positional = Vec::new();
    let mut i = 0;
    while i < args.len() {
        let a = &args[i];
        if let Some(key) = a.strip_prefix("--") {
            if BOOL_FLAGS.contains(&key) {
                bools.insert(key.to_string());
                i += 1;
            } else if i + 1 < args.len() && !args[i + 1].starts_with("--") {
                flags.insert(key.to_string(), args[i + 1].clone());
                i += 2;
            } else {
                bools.insert(key.to_string());
                i += 1;
            }
        } else {
            positional.push(a.clone());
            i += 1;
        }
    }
    Args { flags, bools, positional }
}

fn cmd_generate(args: &Args) -> ExitCode {
    let _span = explainti_obs::span!("cli.generate");
    let Some(out) = args.flags.get("out") else {
        return usage();
    };
    let tables: usize = args.flags.get("tables").and_then(|v| v.parse().ok()).unwrap_or(600);
    let dataset = if args.bools.contains("git") {
        generate_git(&GitConfig { num_tables: tables, ..Default::default() })
    } else {
        generate_wiki(&WikiConfig { num_tables: tables, ..Default::default() })
    };
    match serde_json::to_string(&dataset).map(|s| std::fs::write(out, s)) {
        Ok(Ok(())) => {
            let st = dataset.statistics();
            println!(
                "wrote {out}: {} tables, {} type labels, {} relation labels",
                st.num_tables, st.num_type_labels, st.num_relation_labels
            );
            ExitCode::SUCCESS
        }
        other => {
            eprintln!("failed to write corpus: {other:?}");
            ExitCode::FAILURE
        }
    }
}

fn load_dataset(path: &Path) -> Result<Dataset, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path:?}: {e}"))?;
    serde_json::from_str(&text).map_err(|e| format!("parse {path:?}: {e}"))
}

fn build_model(dataset: &Dataset, model_dir: &Path) -> Result<ExplainTi, String> {
    let roberta = std::fs::read_to_string(model_dir.join("variant.txt"))
        .map(|v| v.trim() == "roberta")
        .unwrap_or(false);
    let cfg = if roberta {
        ExplainTiConfig::roberta_like(2048, 32)
    } else {
        ExplainTiConfig::bert_like(2048, 32)
    };
    let mut model = ExplainTi::new(dataset, cfg);
    model.load_weights(&model_dir.join("weights.bin")).map_err(|e| format!("load weights: {e}"))?;
    // GE/SE read the embedding store; rebuild it for the loaded weights.
    for task in 0..model.tasks().len() {
        model.refresh_store(task);
    }
    Ok(model)
}

fn cmd_train(args: &Args) -> ExitCode {
    let _span = explainti_obs::span!("cli.train");
    let (Some(corpus), Some(out)) = (args.flags.get("corpus"), args.flags.get("out")) else {
        return usage();
    };
    let dataset = match load_dataset(Path::new(corpus)) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let roberta = args.bools.contains("roberta");
    let mut cfg = if roberta {
        ExplainTiConfig::roberta_like(2048, 32)
    } else {
        ExplainTiConfig::bert_like(2048, 32)
    };
    if let Some(e) = args.flags.get("epochs").and_then(|v| v.parse().ok()) {
        cfg.epochs = e;
    }
    let mut model = ExplainTi::new(&dataset, cfg);
    println!("training ({} weights)…", model.num_weights());
    let report = model.train();
    println!("trained in {:?} (best epoch {})", report.total_time, report.best_epoch);
    if let Some(path) = args.flags.get("report-out") {
        match serde_json::to_string_pretty(&report) {
            Ok(json) => {
                if let Err(e) = std::fs::write(path, json) {
                    eprintln!("write report {path}: {e}");
                    return ExitCode::FAILURE;
                }
                println!("wrote training report to {path}");
            }
            Err(e) => {
                eprintln!("serialise report: {e:?}");
                return ExitCode::FAILURE;
            }
        }
    }
    for kind in [TaskKind::Type, TaskKind::Relation] {
        if model.task_index(kind).is_some() {
            let f1 = model.evaluate(kind, Split::Test);
            println!("{kind:9} test F1: {f1}");
        }
    }

    let dir = PathBuf::from(out);
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("create {dir:?}: {e}");
        return ExitCode::FAILURE;
    }
    let corpus_copy = dir.join("corpus.json");
    if std::fs::copy(corpus, &corpus_copy).is_err() {
        // Fall back to re-serialising (e.g. cross-device copy).
        if let Err(e) = std::fs::write(&corpus_copy, serde_json::to_string(&dataset).unwrap()) {
            eprintln!("write corpus snapshot: {e}");
            return ExitCode::FAILURE;
        }
    }
    if let Err(e) =
        std::fs::write(dir.join("variant.txt"), if roberta { "roberta" } else { "bert" })
    {
        eprintln!("write variant: {e}");
        return ExitCode::FAILURE;
    }
    if let Err(e) = model.save_weights(&dir.join("weights.bin")) {
        eprintln!("save weights: {e}");
        return ExitCode::FAILURE;
    }
    println!("saved model to {dir:?}");
    ExitCode::SUCCESS
}

fn cmd_interpret(args: &Args) -> ExitCode {
    let _span = explainti_obs::span!("cli.interpret");
    let Some(model_dir) = args.flags.get("model").map(PathBuf::from) else {
        return usage();
    };
    if args.positional.is_empty() {
        return usage();
    }
    let dataset = match load_dataset(&model_dir.join("corpus.json")) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let mut model = match build_model(&dataset, &model_dir) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let mut failures = 0usize;
    for file in &args.positional {
        let table = match table_from_csv_file(Path::new(file)) {
            Ok(Ok(t)) => t,
            Ok(Err(e)) => {
                eprintln!("{file}: {e}");
                failures += 1;
                continue;
            }
            Err(e) => {
                eprintln!("{file}: {e}");
                failures += 1;
                continue;
            }
        };
        println!("{file} (\"{}\"):", table.title);
        for col in &table.columns {
            let cells = col.cell_refs();
            let p = model.predict_column(&table.title, &col.header, &cells);
            let label = &dataset.collection.type_labels[p.label];
            println!("  {:<20} → {label} ({:.0}%)", col.header, p.confidence * 100.0);
            for span in p.explanation.top_local_diverse(1) {
                println!("  {:<20}   evidence: \"{}\"", "", span.text);
            }
        }
    }
    if failures > 0 && failures == args.positional.len() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}

fn cmd_evaluate(args: &Args) -> ExitCode {
    let _span = explainti_obs::span!("cli.evaluate");
    let Some(model_dir) = args.flags.get("model").map(PathBuf::from) else {
        return usage();
    };
    let dataset = match load_dataset(&model_dir.join("corpus.json")) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    let mut model = match build_model(&dataset, &model_dir) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    for kind in [TaskKind::Type, TaskKind::Relation] {
        if model.task_index(kind).is_some() {
            let f1 = model.evaluate(kind, Split::Test);
            println!("{kind:9} test F1 (micro/macro/weighted): {f1}");
        }
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = argv.first() else {
        return usage();
    };
    let args = parse_args(&argv[1..]);
    if let Some(path) = args.flags.get("trace-out") {
        if let Err(e) = explainti_obs::set_trace_file(Path::new(path)) {
            eprintln!("open trace file {path}: {e}");
            return ExitCode::FAILURE;
        }
    }
    let code = match cmd.as_str() {
        "generate" => cmd_generate(&args),
        "train" => cmd_train(&args),
        "interpret" => cmd_interpret(&args),
        "evaluate" => cmd_evaluate(&args),
        _ => usage(),
    };
    // Per-stage latency breakdown (the paper's Table V stages) on stderr.
    if explainti_obs::enabled() {
        let report = explainti_obs::report();
        if !report.is_empty() {
            eprintln!("{report}");
        }
    }
    explainti_obs::close_trace();
    code
}

#[cfg(test)]
mod tests {
    use super::parse_args;

    #[test]
    fn parses_flags_bools_and_positionals() {
        let argv: Vec<String> =
            ["--corpus", "c.json", "--roberta", "a.csv", "b.csv", "--epochs", "5"]
                .iter()
                .map(|s| s.to_string())
                .collect();
        let args = parse_args(&argv);
        assert_eq!(args.flags.get("corpus").unwrap(), "c.json");
        assert_eq!(args.flags.get("epochs").unwrap(), "5");
        assert!(args.bools.contains("roberta"));
        assert_eq!(args.positional, vec!["a.csv", "b.csv"]);
    }

    #[test]
    fn trailing_bool_flag() {
        let argv: Vec<String> = ["--git"].iter().map(|s| s.to_string()).collect();
        let args = parse_args(&argv);
        assert!(args.bools.contains("git"));
        assert!(args.positional.is_empty());
    }
}
