//! # ExplainTI — explainable table interpretation in Rust
//!
//! A from-scratch reproduction of *"Towards Explainable Table
//! Interpretation Using Multi-view Explanations"* (Gao et al., ICDE
//! 2023): column type and column relation prediction with **local**,
//! **global**, and **structural** explanations for every prediction.
//!
//! This facade crate re-exports the whole workspace:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `explainti-core` | the ExplainTI model, LE/GE/SE, trainer |
//! | [`nn`] | `explainti-nn` | tensor, tape autograd, layers, optimizers |
//! | [`encoder`] | `explainti-encoder` | pre-trainable transformer encoder |
//! | [`tokenizer`] | `explainti-tokenizer` | vocab + table serialisation |
//! | [`ann`] | `explainti-ann` | HNSW / brute-force vector indexes |
//! | [`table`] | `explainti-table` | table model + column graphs |
//! | [`corpus`] | `explainti-corpus` | synthetic Wiki/Git benchmarks |
//! | [`metrics`] | `explainti-metrics` | F1 triplet, timing, reports |
//! | [`baselines`] | `explainti-baselines` | Sherlock…TCN, SelfExplain, post-hoc |
//! | [`xeval`] | `explainti-xeval` | sufficiency, judges, online simulation |
//! | [`api`] | `explainti-api` | typed request/response DTOs + error codes |
//! | [`serve`] | `explainti-serve` | micro-batching HTTP inference server |
//!
//! ## Quickstart
//!
//! ```no_run
//! use explainti::prelude::*;
//!
//! let dataset = generate_wiki(&WikiConfig::default());
//! let mut model = ExplainTi::new(&dataset, ExplainTiConfig::bert_like(2048, 32));
//! model.train();
//! let f1 = model.evaluate(TaskKind::Type, Split::Test);
//! let prediction = model.predict(TaskKind::Type, 0);
//! println!("test F1 {f1}; top window: {:?}", prediction.explanation.top_local(1));
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and `crates/bench`
//! for the per-table/figure reproduction binaries.

#![warn(missing_docs)]

pub use explainti_ann as ann;
pub use explainti_api as api;
pub use explainti_baselines as baselines;
pub use explainti_core as core;
pub use explainti_corpus as corpus;
pub use explainti_encoder as encoder;
pub use explainti_faults as faults;
pub use explainti_metrics as metrics;
pub use explainti_nn as nn;
pub use explainti_pool as pool;
pub use explainti_serve as serve;
pub use explainti_table as table;
pub use explainti_tokenizer as tokenizer;
pub use explainti_xeval as xeval;

/// Common imports for applications.
pub mod prelude {
    pub use explainti_core::{
        ExplainTi, ExplainTiConfig, Explanation, LeMode, Prediction, TaskKind,
    };
    pub use explainti_corpus::{
        generate_git, generate_wiki, Dataset, GitConfig, Split, WikiConfig,
    };
    pub use explainti_encoder::Variant;
    pub use explainti_metrics::F1Scores;
    pub use explainti_table::{Column, Table, TableCollection};
}
