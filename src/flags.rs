//! Typed command-line flag specs.
//!
//! Each subcommand declares its flags up front — name, whether a value
//! is expected, help text — and parsing validates against that spec:
//! unknown flags are rejected, required flags are enforced, and usage
//! text is generated from the same declaration, so help and behaviour
//! cannot drift apart.
//!
//! The predecessor parser guessed flag arity from the *next* token: a
//! value flag followed by a `--`-prefixed value (`--out --weird-name`)
//! was silently reclassified as a boolean and the value became a
//! positional. Here arity comes from the spec, so that input is a loud
//! [`FlagError::MissingValue`], with `--key=value` as the escape hatch
//! for values that genuinely start with `--`.

use std::collections::{HashMap, HashSet};
use std::str::FromStr;

/// How a parse failed; rendered to the user next to the usage text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FlagError {
    /// A `--flag` the spec doesn't declare.
    UnknownFlag(String),
    /// A value flag at the end of the line or followed by another flag.
    MissingValue(String),
    /// A required flag that never appeared.
    MissingRequired(String),
    /// A boolean flag given as `--flag=value`.
    UnexpectedValue(String),
    /// A positional argument for a command that takes none.
    UnexpectedPositional(String),
    /// A value that failed to parse as its declared type.
    BadValue { flag: String, value: String, expected: &'static str },
}

impl std::fmt::Display for FlagError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FlagError::UnknownFlag(n) => write!(f, "unknown flag --{n}"),
            FlagError::MissingValue(n) => write!(
                f,
                "flag --{n} needs a value (use --{n}=VALUE if the value starts with '--')"
            ),
            FlagError::MissingRequired(n) => write!(f, "missing required flag --{n}"),
            FlagError::UnexpectedValue(n) => write!(f, "flag --{n} does not take a value"),
            FlagError::UnexpectedPositional(a) => {
                write!(f, "unexpected positional argument {a:?}")
            }
            FlagError::BadValue { flag, value, expected } => {
                write!(f, "flag --{flag}: {value:?} is not a valid {expected}")
            }
        }
    }
}

impl std::error::Error for FlagError {}

struct FlagSpec {
    name: &'static str,
    takes_value: bool,
    required: bool,
    value_name: &'static str,
    help: &'static str,
}

/// Declarative spec for one subcommand: flags + positional arity.
pub struct CommandSpec {
    name: &'static str,
    about: &'static str,
    flags: Vec<FlagSpec>,
    /// `Some((metavar, min_count))` when positionals are accepted.
    positionals: Option<(&'static str, usize)>,
}

impl CommandSpec {
    /// A new spec; flags are added with the builder methods.
    pub fn new(name: &'static str, about: &'static str) -> Self {
        Self { name, about, flags: Vec::new(), positionals: None }
    }

    fn flag(mut self, spec: FlagSpec) -> Self {
        debug_assert!(
            self.flags.iter().all(|f| f.name != spec.name),
            "duplicate flag --{}",
            spec.name
        );
        self.flags.push(spec);
        self
    }

    /// A required `--name VALUE` flag.
    pub fn required_value(
        self,
        name: &'static str,
        value_name: &'static str,
        help: &'static str,
    ) -> Self {
        self.flag(FlagSpec { name, takes_value: true, required: true, value_name, help })
    }

    /// An optional `--name VALUE` flag.
    pub fn value(self, name: &'static str, value_name: &'static str, help: &'static str) -> Self {
        self.flag(FlagSpec { name, takes_value: true, required: false, value_name, help })
    }

    /// A boolean `--name` switch.
    pub fn switch(self, name: &'static str, help: &'static str) -> Self {
        self.flag(FlagSpec { name, takes_value: false, required: false, value_name: "", help })
    }

    /// Accept positional arguments (at least `min` of them).
    pub fn positionals(mut self, metavar: &'static str, min: usize) -> Self {
        self.positionals = Some((metavar, min));
        self
    }

    /// The command name this spec was declared with.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// One generated usage block: synopsis plus per-flag help lines.
    pub fn usage(&self) -> String {
        let mut synopsis = format!("explainti {}", self.name);
        for f in &self.flags {
            let item = if f.takes_value {
                format!("--{} <{}>", f.name, f.value_name)
            } else {
                format!("--{}", f.name)
            };
            if f.required {
                synopsis.push_str(&format!(" {item}"));
            } else {
                synopsis.push_str(&format!(" [{item}]"));
            }
        }
        if let Some((metavar, min)) = self.positionals {
            synopsis.push_str(if min > 0 { " " } else { " [" });
            synopsis.push_str(metavar);
            synopsis.push_str(if min > 0 { "…" } else { "…]" });
        }
        let mut out = format!("{synopsis}\n    {}\n", self.about);
        for f in &self.flags {
            let lhs = if f.takes_value {
                format!("--{} <{}>", f.name, f.value_name)
            } else {
                format!("--{}", f.name)
            };
            out.push_str(&format!("      {lhs:<24} {}\n", f.help));
        }
        out
    }

    /// Parses `args` against this spec.
    pub fn parse(&self, args: &[String]) -> Result<Parsed, FlagError> {
        let mut values = HashMap::new();
        let mut switches = HashSet::new();
        let mut positional = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let arg = &args[i];
            i += 1;
            let Some(stripped) = arg.strip_prefix("--") else {
                if self.positionals.is_none() {
                    return Err(FlagError::UnexpectedPositional(arg.clone()));
                }
                positional.push(arg.clone());
                continue;
            };
            let (key, inline_value) = match stripped.split_once('=') {
                Some((k, v)) => (k, Some(v.to_string())),
                None => (stripped, None),
            };
            let Some(spec) = self.flags.iter().find(|f| f.name == key) else {
                return Err(FlagError::UnknownFlag(key.to_string()));
            };
            if spec.takes_value {
                let value = match inline_value {
                    Some(v) => v,
                    None => {
                        // Arity comes from the spec: the next token is the
                        // value *unless* it looks like another flag, which
                        // is the classic typo (`--out --epochs`) the old
                        // parser swallowed. `--key=value` opts out.
                        match args.get(i) {
                            Some(next) if !next.starts_with("--") => {
                                i += 1;
                                next.clone()
                            }
                            _ => return Err(FlagError::MissingValue(key.to_string())),
                        }
                    }
                };
                values.insert(spec.name, value);
            } else {
                if inline_value.is_some() {
                    return Err(FlagError::UnexpectedValue(key.to_string()));
                }
                switches.insert(spec.name);
            }
        }
        for f in self.flags.iter().filter(|f| f.required) {
            if !values.contains_key(f.name) {
                return Err(FlagError::MissingRequired(f.name.to_string()));
            }
        }
        if let Some((metavar, min)) = self.positionals {
            if positional.len() < min {
                return Err(FlagError::MissingRequired(format!("<{metavar}>")));
            }
        }
        Ok(Parsed { values, switches, positional })
    }
}

/// Validated arguments for one command invocation.
#[derive(Debug)]
pub struct Parsed {
    values: HashMap<&'static str, String>,
    switches: HashSet<&'static str>,
    /// Positional arguments, in order.
    pub positional: Vec<String>,
}

impl Parsed {
    /// The raw value of a flag, if given.
    pub fn get(&self, name: &'static str) -> Option<&str> {
        self.values.get(name).map(String::as_str)
    }

    /// Whether a boolean switch was given.
    pub fn is_set(&self, name: &'static str) -> bool {
        self.switches.contains(name)
    }

    /// A flag parsed into `T`, or `None` when absent. Parse failures are
    /// loud errors, not silent fallbacks.
    pub fn get_opt<T: FromStr>(&self, name: &'static str) -> Result<Option<T>, FlagError> {
        match self.values.get(name) {
            None => Ok(None),
            Some(v) => v.parse().map(Some).map_err(|_| FlagError::BadValue {
                flag: name.to_string(),
                value: v.clone(),
                expected: std::any::type_name::<T>(),
            }),
        }
    }

    /// A flag parsed into `T`, or `default` when absent.
    pub fn get_or<T: FromStr>(&self, name: &'static str, default: T) -> Result<T, FlagError> {
        Ok(self.get_opt(name)?.unwrap_or(default))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(args: &[&str]) -> Vec<String> {
        args.iter().map(|s| s.to_string()).collect()
    }

    fn spec() -> CommandSpec {
        CommandSpec::new("train", "train a model")
            .required_value("corpus", "FILE", "corpus JSON")
            .value("epochs", "N", "training epochs")
            .switch("roberta", "use the RoBERTa-like variant")
            .positionals("file.csv", 0)
    }

    #[test]
    fn parses_values_switches_and_positionals() {
        let p = spec()
            .parse(&argv(&["--corpus", "c.json", "--roberta", "a.csv", "b.csv", "--epochs", "5"]))
            .unwrap();
        assert_eq!(p.get("corpus"), Some("c.json"));
        assert_eq!(p.get_or("epochs", 0usize).unwrap(), 5);
        assert!(p.is_set("roberta"));
        assert_eq!(p.positional, vec!["a.csv", "b.csv"]);
    }

    #[test]
    fn unknown_flag_is_rejected() {
        let err = spec().parse(&argv(&["--corpus", "c.json", "--bogus"])).unwrap_err();
        assert_eq!(err, FlagError::UnknownFlag("bogus".into()));
    }

    #[test]
    fn missing_required_flag_is_rejected() {
        let err = spec().parse(&argv(&["--epochs", "3"])).unwrap_err();
        assert_eq!(err, FlagError::MissingRequired("corpus".into()));
    }

    #[test]
    fn value_flag_followed_by_flag_errors_loudly() {
        // Regression: the old parser silently reclassified `--corpus` as a
        // boolean here and `--epochs` ate "a.csv" as its value.
        let err = spec().parse(&argv(&["--corpus", "--epochs", "3"])).unwrap_err();
        assert_eq!(err, FlagError::MissingValue("corpus".into()));
    }

    #[test]
    fn trailing_value_flag_errors_loudly() {
        let err = spec().parse(&argv(&["--corpus"])).unwrap_err();
        assert_eq!(err, FlagError::MissingValue("corpus".into()));
    }

    #[test]
    fn equals_syntax_allows_dashed_values() {
        let p = spec().parse(&argv(&["--corpus=--odd--name.json"])).unwrap();
        assert_eq!(p.get("corpus"), Some("--odd--name.json"));
    }

    #[test]
    fn switch_with_value_is_rejected() {
        let err = spec().parse(&argv(&["--corpus", "c.json", "--roberta=yes"])).unwrap_err();
        assert_eq!(err, FlagError::UnexpectedValue("roberta".into()));
    }

    #[test]
    fn bad_typed_value_is_loud() {
        let p = spec().parse(&argv(&["--corpus", "c.json", "--epochs", "many"])).unwrap();
        assert!(matches!(
            p.get_or("epochs", 0usize),
            Err(FlagError::BadValue { ref flag, .. }) if flag == "epochs"
        ));
    }

    #[test]
    fn positionals_rejected_when_not_declared() {
        let spec = CommandSpec::new("evaluate", "eval").required_value("model", "DIR", "model");
        let err = spec.parse(&argv(&["--model", "m", "stray.csv"])).unwrap_err();
        assert_eq!(err, FlagError::UnexpectedPositional("stray.csv".into()));
    }

    #[test]
    fn required_positionals_enforced() {
        let spec = CommandSpec::new("interpret", "interpret")
            .required_value("model", "DIR", "model")
            .positionals("file.csv", 1);
        let err = spec.parse(&argv(&["--model", "m"])).unwrap_err();
        assert_eq!(err, FlagError::MissingRequired("<file.csv>".into()));
    }

    #[test]
    fn usage_lists_every_flag() {
        let text = spec().usage();
        assert!(text.contains("--corpus <FILE>"));
        assert!(text.contains("--epochs <N>"));
        assert!(text.contains("--roberta"));
        assert!(text.contains("file.csv"));
    }
}
